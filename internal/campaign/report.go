package campaign

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"comfort/internal/engines"
	"comfort/internal/fuzzers"
	"comfort/internal/js/cov"
	"comfort/internal/js/interp"
	"comfort/internal/js/lint"
	"comfort/internal/js/parser"
)

// engineOrder fixes the row order of the paper's tables.
var engineOrder = []string{
	"V8", "ChakraCore", "JSC", "SpiderMonkey", "Rhino", "Nashorn",
	"Hermes", "JerryScript", "QuickJS", "Graaljs",
}

// tw is a minimal text-table writer.
type tw struct {
	b      strings.Builder
	widths []int
	rows   [][]string
}

func (t *tw) row(cells ...string) {
	for i, c := range cells {
		if i >= len(t.widths) {
			t.widths = append(t.widths, 0)
		}
		if len(c) > t.widths[i] {
			t.widths[i] = len(c)
		}
	}
	t.rows = append(t.rows, cells)
}

func (t *tw) render(title string) string {
	t.b.WriteString(title + "\n")
	for r, cells := range t.rows {
		for i, c := range cells {
			fmt.Fprintf(&t.b, "%-*s", t.widths[i]+2, c)
		}
		t.b.WriteString("\n")
		if r == 0 {
			total := 0
			for _, w := range t.widths {
				total += w + 2
			}
			t.b.WriteString(strings.Repeat("-", total) + "\n")
		}
	}
	return t.b.String()
}

// Table1 renders the engine-version inventory of the paper's Table 1.
func Table1() string {
	t := &tw{}
	t.row("JS Engine", "Version", "Build No.", "Release Date", "Supported ES Spec.")
	for _, e := range engines.All() {
		for i := len(e.Versions) - 1; i >= 0; i-- {
			v := e.Versions[i]
			t.row(e.Name, v.Name, v.Build, v.Release, v.ES)
		}
	}
	return t.render("Table 1: JS engine versions under test")
}

// triage tallies submitted/verified/fixed/test262 for a defect set.
type triage struct{ s, v, f, t, n int }

func tally(defects []*Defect) map[string]*triage {
	out := map[string]*triage{}
	bump := func(key string, d *Defect) {
		tr := out[key]
		if tr == nil {
			tr = &triage{}
			out[key] = tr
		}
		tr.s++
		if d.Verified {
			tr.v++
		}
		if d.DevFixed {
			tr.f++
		}
		if d.Test262 {
			tr.t++
		}
		if d.New {
			tr.n++
		}
	}
	for _, d := range defects {
		bump(d.Engine, d)
	}
	return out
}

// Table2 renders per-engine bug statistics: ground truth (the paper's
// numbers, exactly) next to what the campaign discovered.
func Table2(found []*Defect) string {
	paper := tally(engines.Catalog())
	measured := tally(found)
	t := &tw{}
	t.row("JS Engine", "#Submitted", "#Verified", "#Fixed", "#Acc. by Test262",
		"| found", "f.verified", "f.fixed", "f.test262")
	var tot, ftot triage
	for _, e := range engineOrder {
		p := paper[e]
		if p == nil {
			// An engine with no catalog defects still gets a row (Table3-5
			// and Figure7 already tolerate absent keys; keep Table2
			// consistent instead of dereferencing a nil map entry).
			p = &triage{}
		}
		m := measured[e]
		if m == nil {
			m = &triage{}
		}
		t.row(e, fmt.Sprint(p.s), fmt.Sprint(p.v), fmt.Sprint(p.f), fmt.Sprint(p.t),
			fmt.Sprintf("| %d", m.s), fmt.Sprint(m.v), fmt.Sprint(m.f), fmt.Sprint(m.t))
		tot.s += p.s
		tot.v += p.v
		tot.f += p.f
		tot.t += p.t
		ftot.s += m.s
		ftot.v += m.v
		ftot.f += m.f
		ftot.t += m.t
	}
	t.row("Total", fmt.Sprint(tot.s), fmt.Sprint(tot.v), fmt.Sprint(tot.f), fmt.Sprint(tot.t),
		fmt.Sprintf("| %d", ftot.s), fmt.Sprint(ftot.v), fmt.Sprint(ftot.f), fmt.Sprint(ftot.t))
	return t.render("Table 2: bug statistics per engine (paper ground truth | campaign-found)")
}

// Table3 renders per-version bug counts (paper | found).
func Table3(found []*Defect) string {
	foundSet := map[string]bool{}
	for _, d := range found {
		foundSet[d.ID] = true
	}
	type row struct{ s, v, f, n, fs int }
	rows := map[string]*row{}
	var keys []string
	for _, d := range engines.Catalog() {
		key := d.Engine + " " + d.AttrVersion
		r := rows[key]
		if r == nil {
			r = &row{}
			rows[key] = r
			keys = append(keys, key)
		}
		r.s++
		if d.Verified {
			r.v++
		}
		if d.DevFixed {
			r.f++
		}
		if d.New {
			r.n++
		}
		if foundSet[d.ID] {
			r.fs++
		}
	}
	sort.Strings(keys)
	t := &tw{}
	t.row("Engine Version", "#Submitted", "#Verified", "#Fixed", "#New", "| found")
	for _, k := range keys {
		r := rows[k]
		t.row(k, fmt.Sprint(r.s), fmt.Sprint(r.v), fmt.Sprint(r.f), fmt.Sprint(r.n),
			fmt.Sprintf("| %d", r.fs))
	}
	return t.render("Table 3: bugs per engine version (paper ground truth | campaign-found)")
}

// Table4 renders the discovery-channel breakdown of Table 4.
func Table4(found []*Defect) string {
	type row struct{ s, v, f, t, fs int }
	rows := map[engines.Channel]*row{
		engines.ChannelGen:      {},
		engines.ChannelSpecData: {},
	}
	foundSet := map[string]bool{}
	for _, d := range found {
		foundSet[d.ID] = true
	}
	for _, d := range engines.Catalog() {
		r := rows[d.Channel]
		r.s++
		if d.Verified {
			r.v++
		}
		if d.DevFixed {
			r.f++
		}
		if d.Test262 {
			r.t++
		}
		if foundSet[d.ID] {
			r.fs++
		}
	}
	t := &tw{}
	t.row("Category", "#Submitted", "#Confirmed", "#Fixed", "#Acc. by Test262", "| found")
	for _, ch := range []engines.Channel{engines.ChannelGen, engines.ChannelSpecData} {
		r := rows[ch]
		t.row(ch.String(), fmt.Sprint(r.s), fmt.Sprint(r.v), fmt.Sprint(r.f), fmt.Sprint(r.t),
			fmt.Sprintf("| %d", r.fs))
	}
	return t.render("Table 4: bug statistics per discovery channel (paper | campaign-found)")
}

// Table5 renders the top-10 buggy API object types.
func Table5(found []*Defect) string {
	order := []string{"Object", "String", "Array", "TypedArray", "Number",
		"eval", "DataView", "JSON", "RegExp", "Date"}
	type row struct{ s, v, f, fs int }
	rows := map[string]*row{}
	foundSet := map[string]bool{}
	for _, d := range found {
		foundSet[d.ID] = true
	}
	for _, d := range engines.Catalog() {
		r := rows[d.APIType]
		if r == nil {
			r = &row{}
			rows[d.APIType] = r
		}
		r.s++
		if d.Verified {
			r.v++
		}
		if d.DevFixed {
			r.f++
		}
		if foundSet[d.ID] {
			r.fs++
		}
	}
	t := &tw{}
	t.row("API Type", "#Submitted", "#Confirmed", "#Fixed", "| found")
	for _, at := range order {
		r := rows[at]
		if r == nil {
			r = &row{}
		}
		t.row(at, fmt.Sprint(r.s), fmt.Sprint(r.v), fmt.Sprint(r.f), fmt.Sprintf("| %d", r.fs))
	}
	return t.render("Table 5: top-10 buggy object types (paper | campaign-found)")
}

// Figure7 renders the per-component bug counts.
func Figure7(found []*Defect) string {
	type row struct{ confirmed, fixed, foundC int }
	rows := map[engines.Component]*row{}
	foundSet := map[string]bool{}
	for _, d := range found {
		foundSet[d.ID] = true
	}
	for _, d := range engines.Catalog() {
		r := rows[d.Component]
		if r == nil {
			r = &row{}
			rows[d.Component] = r
		}
		if d.Verified {
			r.confirmed++
		}
		if d.DevFixed {
			r.fixed++
		}
		if foundSet[d.ID] && d.Verified {
			r.foundC++
		}
	}
	t := &tw{}
	t.row("Component", "Confirmed", "Fixed", "| found-confirmed")
	for _, c := range engines.Components() {
		r := rows[c]
		if r == nil {
			r = &row{}
		}
		t.row(c.String(), fmt.Sprint(r.confirmed), fmt.Sprint(r.fixed), fmt.Sprintf("| %d", r.foundC))
	}
	return t.render("Figure 7: bugs per compiler component (paper | campaign-found)")
}

// ReductionSummary renders the witness-reduction statistics of a campaign
// next to the tables: total shrinkage plus min/median/mean reduced sizes.
func ReductionSummary(res *Result) string {
	if res == nil || res.Reduction == nil {
		// Reduction is nil both when Config.ReduceWitnesses was off and
		// when the campaign simply found nothing to reduce.
		return "Reduction: no reduced witnesses (no findings, or Config.ReduceWitnesses disabled)\n"
	}
	s := res.Reduction
	t := &tw{}
	t.row("Findings", "Orig bytes", "Reduced bytes", "Kept", "Min", "Median", "Mean")
	kept := "-"
	if s.OrigBytes > 0 {
		kept = fmt.Sprintf("%.0f%%", 100*float64(s.ReducedBytes)/float64(s.OrigBytes))
	}
	t.row(fmt.Sprint(s.Findings), fmt.Sprint(s.OrigBytes), fmt.Sprint(s.ReducedBytes),
		kept, fmt.Sprint(s.MinBytes), fmt.Sprintf("%.1f", s.MedianBytes),
		fmt.Sprintf("%.1f", s.MeanBytes))
	return t.render("Reduction: witness sizes after Section-3.5 ddmin (bytes)")
}

// FuzzerComparison holds one fuzzer's Figure-8 measurements.
type FuzzerComparison struct {
	Name      string
	Found     int
	Confirmed int
	Fixed     int
}

// Figure8 runs the six-fuzzer comparison with an equal test-case budget per
// fuzzer over all engines' latest builds (the paper's 72-hour experiment,
// scaled) and renders the chart data.
func Figure8(casesPerFuzzer int, seed int64) (string, []FuzzerComparison) {
	return Figure8With(Config{}, casesPerFuzzer, seed)
}

// Figure8With runs the fuzzer comparison with base supplying scheduler
// options (Workers, Fuel, Context, Progress); Fuzzer/Testbeds/Cases/Seed
// are overridden per comparison run.
func Figure8With(base Config, casesPerFuzzer int, seed int64) (string, []FuzzerComparison) {
	var comparisons []FuzzerComparison
	testbeds := figure8Testbeds()
	for _, f := range fuzzers.All() {
		cfg := base
		cfg.Fuzzer = f
		cfg.Testbeds = testbeds
		cfg.Cases = casesPerFuzzer
		cfg.Seed = seed
		res := Run(cfg)
		c := FuzzerComparison{Name: f.Name()}
		for _, finding := range res.Found { //detlint:order — order-independent counting
			c.Found++
			if finding.Defect.Verified {
				c.Confirmed++
			}
			if finding.Defect.DevFixed {
				c.Fixed++
			}
		}
		comparisons = append(comparisons, c)
	}
	t := &tw{}
	t.row("Fuzzer", "Submitted", "Confirmed", "Fixed")
	for _, c := range comparisons {
		t.row(c.Name, fmt.Sprint(c.Found), fmt.Sprint(c.Confirmed), fmt.Sprint(c.Fixed))
	}
	return t.render("Figure 8: bugs found per fuzzer under an equal test-case budget"), comparisons
}

// figure8Testbeds: the bug-richest version of every engine, normal+strict,
// excluding Nashorn (dropped from the paper's comparison experiment).
func figure8Testbeds() []engines.Testbed {
	var out []engines.Testbed
	for _, e := range engines.All() {
		if e.Name == "Nashorn" {
			continue
		}
		best := e.Latest()
		bestN := len(engines.ActiveDefects(best))
		for _, v := range e.Versions {
			if n := len(engines.ActiveDefects(v)); n > bestN {
				best, bestN = v, n
			}
		}
		out = append(out, engines.Testbed{Version: best},
			engines.Testbed{Version: best, Strict: true})
	}
	return out
}

// QualityMetrics holds one fuzzer's Figure-9 measurements.
type QualityMetrics struct {
	Name        string
	PassingRate float64
	StmtCov     float64
	FuncCov     float64
	BranchCov   float64
}

// Figure9 measures syntax passing rate and statement/function/branch
// coverage per fuzzer over n generated programs.
func Figure9(n int, seed int64) (string, []QualityMetrics) {
	var all []QualityMetrics
	for _, f := range fuzzers.All() {
		rng := rand.New(rand.NewSource(seed))
		valid := 0
		var merged cov.Profile
		covered := 0
		for i := 0; i < n; i++ {
			src := generateForQuality(f, rng)
			if !lint.Valid(src) {
				continue
			}
			valid++
			prog, err := parser.Parse(src)
			if err != nil {
				continue
			}
			c := interp.NewCoverage()
			_ = engines.Reference(src, false, engines.RunOptions{Fuel: 150000, Seed: seed, Cov: c})
			merged = cov.Merge(merged, cov.Measure(prog, c))
			covered++
		}
		m := QualityMetrics{
			Name:        f.Name(),
			PassingRate: float64(valid) / float64(n),
			StmtCov:     merged.StmtRate(),
			FuncCov:     merged.FuncRate(),
			BranchCov:   merged.BranchRate(),
		}
		all = append(all, m)
	}
	t := &tw{}
	t.row("Fuzzer", "Passing Rate", "Statement Cov.", "Function Cov.", "Branch Cov.")
	for _, m := range all {
		t.row(m.Name, pct(m.PassingRate), pct(m.StmtCov), pct(m.FuncCov), pct(m.BranchCov))
	}
	return t.render("Figure 9: test-case quality per fuzzer"), all
}

// generateForQuality returns a single raw generated program (the quality
// metrics evaluate generation, not data mutation).
func generateForQuality(f fuzzers.Fuzzer, rng *rand.Rand) string {
	if c, ok := f.(*fuzzers.Comfort); ok {
		return c.GenerateOnly(rng)
	}
	batch := f.Next(rng)
	return batch[0]
}

// Reference wires engines.Reference with coverage (convenience used above).
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
