package server

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// mkJobDir creates a job directory with spec+status for tests that drive
// store/lease primitives directly.
func mkJobDir(t *testing.T, store *Store, seq int, sp Spec) string {
	t.Helper()
	id := jobID(seq)
	st := Status{ID: id, Seq: seq, State: StateQueued, CasesTotal: sp.Cases}
	if err := store.CreateJob(st, sp); err != nil {
		t.Fatal(err)
	}
	return id
}

// TestLeaseCreateIsExclusive: the temp-file + hard-link create is the
// claim arbiter — exactly one of two racing creates can win, and the
// loser sees fs.ErrExist rather than a torn or replaced record.
func TestLeaseCreateIsExclusive(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := mkJobDir(t, store, 1, Spec{Fuzzer: "COMFORT", Cases: 8})
	l := &Lease{Format: LeaseFormatVersion, Instance: "alpha", Epoch: 1, DeadlineMS: 1}
	if err := store.CreateLease(id, l); err != nil {
		t.Fatalf("first create: %v", err)
	}
	l2 := &Lease{Format: LeaseFormatVersion, Instance: "beta", Epoch: 1, DeadlineMS: 2}
	if err := store.CreateLease(id, l2); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("second create: err=%v, want fs.ErrExist", err)
	}
	got, err := store.ReadLease(id)
	if err != nil || got.Instance != "alpha" {
		t.Fatalf("lease after losing create: %+v (err %v), want alpha's intact", got, err)
	}
	// No temp droppings left behind by either attempt.
	entries, _ := os.ReadDir(filepath.Dir(store.LeasePath(id)))
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".lease-") {
			t.Fatalf("temp lease file left behind: %s", e.Name())
		}
	}
}

// TestLeaseFileHardening pins ReadLease's rejection surface: torn or
// garbage bytes and future format versions are per-job errors with
// actionable messages, absence is a clean nil, and a crash between a
// claim's temp-file write and its link (the writeAtomic crash window of
// the fenced path) leaves the job simply unclaimed.
func TestLeaseFileHardening(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sp := Spec{Fuzzer: "COMFORT", Cases: 8}
	torn := mkJobDir(t, store, 1, sp)
	future := mkJobDir(t, store, 2, sp)
	absent := mkJobDir(t, store, 3, sp)
	hollow := mkJobDir(t, store, 4, sp)

	if err := os.WriteFile(store.LeasePath(torn), []byte(`{"format":1,"inst`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.ReadLease(torn); err == nil || !strings.Contains(err.Error(), "torn or garbage") {
		t.Fatalf("torn lease: err=%v, want torn/garbage diagnosis", err)
	}

	if err := store.WriteLease(future, &Lease{Format: LeaseFormatVersion + 7,
		Instance: "from-the-future", Epoch: 12, DeadlineMS: 1 << 60}); err != nil {
		t.Fatal(err)
	}
	_, err = store.ReadLease(future)
	if err == nil || !strings.Contains(err.Error(), "refusing to contest") {
		t.Fatalf("future-format lease: err=%v, want clean refusal naming the format gap", err)
	}

	if l, err := store.ReadLease(absent); err != nil || l != nil {
		t.Fatalf("absent lease: %+v, %v, want nil, nil", l, err)
	}

	// Crash window: the claim's temp file was staged but never linked.
	// The lease is absent, the claim restartable, and a later create wins.
	if err := os.WriteFile(filepath.Join(filepath.Dir(store.LeasePath(hollow)), ".lease-crashed"),
		[]byte(`{"format":1,"instance":"ghost","epoch":1,"deadline_ms":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if l, err := store.ReadLease(hollow); err != nil || l != nil {
		t.Fatalf("lease with only a temp stage present: %+v, %v, want nil, nil", l, err)
	}
	if err := store.CreateLease(hollow, &Lease{Format: LeaseFormatVersion,
		Instance: "alpha", Epoch: 1, DeadlineMS: 1}); err != nil {
		t.Fatalf("create over a crashed temp stage: %v", err)
	}

	// A zero-value/malformed record (missing instance or epoch) is
	// rejected too — it can only come from a buggy or torn writer.
	if err := store.WriteLease(torn, &Lease{Format: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.ReadLease(torn); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("malformed lease: err=%v, want malformed diagnosis", err)
	}
}

// TestGarbageLeaseQuarantinesOnlyThatJob: a job whose lease file is
// unreadable is quarantined with the lease error preserved, while its
// neighbours run to completion — one corrupt claim never takes the
// server down.
func TestGarbageLeaseQuarantinesOnlyThatJob(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sp := Spec{Fuzzer: "COMFORT", Cases: 8, Seed: 2, TestbedLimit: 2}
	bad := mkJobDir(t, store, 1, sp)
	good := mkJobDir(t, store, 2, sp)
	if err := os.WriteFile(store.LeasePath(bad), []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	opt := testOptions(t)
	opt.Store = store
	s, err := NewSupervisor(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	waitIdle(t, s)

	badSt, _ := s.JobStatus(bad)
	if badSt.State != StateQuarantined {
		t.Fatalf("garbage-lease job: state %s (%q), want quarantined", badSt.State, badSt.LastError)
	}
	if !strings.Contains(badSt.LastError, "lease") {
		t.Fatalf("quarantine error does not name the lease: %q", badSt.LastError)
	}
	if badSt.Retries != 0 {
		t.Fatalf("garbage lease burned %d retries, want 0 (permanent)", badSt.Retries)
	}
	goodSt, _ := s.JobStatus(good)
	if goodSt.State != StateDone {
		t.Fatalf("neighbour job: state %s (%q), want done", goodSt.State, goodSt.LastError)
	}
}

// TestFencedWriteCrashWindows drives fencedWrite through the windows the
// protocol must close: an epoch bumped by a peer, an own deadline that
// expired while stalled, and a released-then-retaken lease. In every
// case the stale writer's bytes must not land.
func TestFencedWriteCrashWindows(t *testing.T) {
	clk := newFakeClock()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSupervisor(twoInstanceOptions(store, clk, "alpha"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	sp := Spec{Fuzzer: "COMFORT", Cases: 8}
	probe := func(j *Job, path string) error {
		return s.fencedWrite(j, func() error { return writeAtomic(path, []byte("stale bytes")) })
	}

	t.Run("PeerBumpedEpoch", func(t *testing.T) {
		id := mkJobDir(t, store, 11, sp)
		j := &Job{ID: id, Seq: 11, Spec: sp, hub: newHub()}
		if err := s.claimJob(j); err != nil {
			t.Fatalf("claim: %v", err)
		}
		// A peer fenced us off while we stalled: epoch 2 on disk.
		if err := store.WriteLease(id, &Lease{Format: LeaseFormatVersion, Instance: "beta",
			Epoch: 2, DeadlineMS: clk.Now().Add(time.Hour).UnixMilli()}); err != nil {
			t.Fatal(err)
		}
		target := filepath.Join(filepath.Dir(store.LeasePath(id)), "probe.json")
		before := s.Fences()
		if err := probe(j, target); !errors.Is(err, ErrFenced) {
			t.Fatalf("write under bumped epoch: err=%v, want ErrFenced", err)
		}
		if _, err := os.Stat(target); !errors.Is(err, fs.ErrNotExist) {
			t.Fatal("stale bytes landed despite the bumped epoch")
		}
		if s.Fences() != before+1 {
			t.Fatalf("fence not counted: %d -> %d", before, s.Fences())
		}
		if !j.isFenced() {
			t.Fatal("job not marked fenced after a refused write")
		}
		// Once fenced, every further write is refused without re-reading.
		if err := probe(j, target); !errors.Is(err, ErrFenced) {
			t.Fatalf("write after fencing: err=%v, want ErrFenced", err)
		}
	})

	t.Run("OwnDeadlineExpired", func(t *testing.T) {
		id := mkJobDir(t, store, 12, sp)
		j := &Job{ID: id, Seq: 12, Spec: sp, hub: newHub()}
		if err := s.claimJob(j); err != nil {
			t.Fatalf("claim: %v", err)
		}
		// The disk lease is still ours, but our deadline passed while we
		// stalled: a peer may be mid-takeover, so the write must refuse
		// on the local deadline alone.
		clk.Advance(testLeaseTTL + time.Second)
		target := filepath.Join(filepath.Dir(store.LeasePath(id)), "probe.json")
		if err := probe(j, target); !errors.Is(err, ErrFenced) {
			t.Fatalf("write past own deadline: err=%v, want ErrFenced", err)
		}
		if _, err := os.Stat(target); !errors.Is(err, fs.ErrNotExist) {
			t.Fatal("stale bytes landed past the deadline")
		}
	})

	t.Run("ReleaseThenRetake", func(t *testing.T) {
		id := mkJobDir(t, store, 13, sp)
		j := &Job{ID: id, Seq: 13, Spec: sp, hub: newHub()}
		if err := s.claimJob(j); err != nil {
			t.Fatalf("claim: %v", err)
		}
		s.releaseLease(j)
		l, err := store.ReadLease(id)
		if err != nil || !l.Released || l.Epoch != 1 {
			t.Fatalf("after release: %+v (err %v), want released epoch 1", l, err)
		}
		// A released lease is claimable immediately; the taker bumps the
		// epoch so the fencing history stays monotone across the handoff.
		j2 := &Job{ID: id, Seq: 13, Spec: sp, hub: newHub()}
		if err := s.claimJob(j2); err != nil {
			t.Fatalf("re-claim released lease: %v", err)
		}
		if l, _ := store.ReadLease(id); l.Epoch != 2 || l.Released {
			t.Fatalf("after re-claim: %+v, want fresh epoch 2", l)
		}
		// The old holder's handle is dead even though the instance names
		// match — the epoch is what fences, not the identity.
		target := filepath.Join(filepath.Dir(store.LeasePath(id)), "probe.json")
		if err := probe(j, target); !errors.Is(err, ErrFenced) {
			t.Fatalf("write under released/retaken lease: err=%v, want ErrFenced", err)
		}
	})
}

// TestRetryDelayGoldenSchedule pins the exact backoff schedule to golden
// values: the delays are a pure function of (seq, attempt), so a
// restarted instance — or a peer taking the job over — computes the
// identical schedule, and two instances can never drift into
// synchronized retry storms. If this test fails, the on-disk meaning of
// "retry attempt N of job seq S" changed for every deployed store.
func TestRetryDelayGoldenSchedule(t *testing.T) {
	golden := []struct {
		seq, attempt int
		want         time.Duration
	}{
		{seq: 1, attempt: 1, want: 1066428519 * time.Nanosecond},
		{seq: 1, attempt: 2, want: 2282890590 * time.Nanosecond},
		{seq: 1, attempt: 3, want: 4821780235 * time.Nanosecond},
		{seq: 1, attempt: 4, want: 8126968761 * time.Nanosecond},
		{seq: 2, attempt: 1, want: 1320860226 * time.Nanosecond},
		{seq: 2, attempt: 2, want: 2141275951 * time.Nanosecond},
		{seq: 2, attempt: 3, want: 4550939236 * time.Nanosecond},
		{seq: 2, attempt: 4, want: 8693156649 * time.Nanosecond},
		{seq: 7, attempt: 1, want: 1594955804 * time.Nanosecond},
		{seq: 7, attempt: 2, want: 2815609346 * time.Nanosecond},
		{seq: 7, attempt: 3, want: 4301472203 * time.Nanosecond},
		{seq: 7, attempt: 4, want: 8500723674 * time.Nanosecond},
	}
	for _, g := range golden {
		if got := retryDelay(time.Second, time.Minute, g.seq, g.attempt); got != g.want {
			t.Errorf("retryDelay(1s, 1m, seq=%d, attempt=%d) = %v, want %v",
				g.seq, g.attempt, got, g.want)
		}
	}
	// Distinct jobs must jitter apart on the same attempt ordinal: equal
	// delays would mean synchronized storms.
	for attempt := 1; attempt <= 4; attempt++ {
		a := retryDelay(time.Second, time.Minute, 1, attempt)
		b := retryDelay(time.Second, time.Minute, 2, attempt)
		if a == b {
			t.Errorf("attempt %d: seq 1 and 2 share delay %v — no de-synchronisation", attempt, a)
		}
	}
}

// TestPriorityDispatchOrder pins the scheduler's dispatch schedule:
// higher priority first, submission order within a priority — asserted
// via the run-attempt order recorded while a blocker holds the single
// active slot.
func TestPriorityDispatchOrder(t *testing.T) {
	opt := testOptions(t)
	opt.MaxActive = 1
	s, err := NewSupervisor(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	var mu sync.Mutex
	var runs []string
	s.runHook = func(j *Job) error {
		mu.Lock()
		runs = append(runs, j.ID)
		mu.Unlock()
		return nil
	}

	blocker, err := s.Submit(Spec{Fuzzer: "COMFORT", Cases: 100000, Seed: 2, TestbedLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		st, _ := s.JobStatus(blocker.ID)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker stuck in %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}

	// Mixed priorities land in the queue while the slot is occupied.
	small := Spec{Fuzzer: "COMFORT", Cases: 4, Seed: 2, TestbedLimit: 2}
	submit := func(prio int) string {
		t.Helper()
		sp := small
		sp.Priority = prio
		st, err := s.Submit(sp)
		if err != nil {
			t.Fatalf("submit priority %d: %v", prio, err)
		}
		return st.ID
	}
	j1 := submit(0)
	j2 := submit(10)
	j3 := submit(-5)
	j4 := submit(10)
	j5 := submit(0)

	if err := s.CancelJob(blocker.ID); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, s)

	mu.Lock()
	got := append([]string(nil), runs...)
	mu.Unlock()
	wantOrder := []string{blocker.ID, j2, j4, j1, j5, j3}
	if len(got) != len(wantOrder) {
		t.Fatalf("recorded %d run attempts %v, want %d", len(got), got, len(wantOrder))
	}
	for i := range wantOrder {
		if got[i] != wantOrder[i] {
			t.Fatalf("dispatch order %v, want %v (priority desc, then submission order)", got, wantOrder)
		}
	}

	// The priority knob is validated at the API edge.
	for _, bad := range []int{101, -101} {
		sp := small
		sp.Priority = bad
		if _, err := s.Submit(sp); err == nil || !strings.Contains(err.Error(), "priority") {
			t.Errorf("priority %d admitted: err=%v, want validation error", bad, err)
		}
	}
}
