package parser

import (
	"reflect"
	"testing"
)

// TestFingerprintCoversEveryOption guards the hand-enumerated bit packing
// in Options.Fingerprint: adding an Options field without extending the
// fingerprint would silently merge parse-cache entries for testbeds that
// should parse differently, so this test fails loudly instead.
func TestFingerprintCoversEveryOption(t *testing.T) {
	typ := reflect.TypeOf(Options{})
	const enumerated = 7 // fields packed in Fingerprint
	if typ.NumField() != enumerated {
		t.Fatalf("parser.Options has %d fields but Fingerprint packs %d — update Fingerprint (and this constant)",
			typ.NumField(), enumerated)
	}

	// Flipping any single field must change the fingerprint, and every
	// single-field variant must be distinct.
	base := Options{}.Fingerprint()
	seen := map[uint64]string{}
	for i := 0; i < typ.NumField(); i++ {
		var o Options
		v := reflect.ValueOf(&o).Elem().Field(i)
		if v.Kind() != reflect.Bool {
			t.Fatalf("field %s is %s; Fingerprint only handles bools — extend it",
				typ.Field(i).Name, v.Kind())
		}
		v.SetBool(true)
		fp := o.Fingerprint()
		if fp == base {
			t.Errorf("setting %s does not change the fingerprint", typ.Field(i).Name)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("fields %s and %s share fingerprint %#x", prev, typ.Field(i).Name, fp)
		}
		seen[fp] = typ.Field(i).Name
	}
}
