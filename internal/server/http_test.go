package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opt Options) (*Supervisor, *httptest.Server) {
	t.Helper()
	s, err := NewSupervisor(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(s))
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

// TestHandlerTable walks the API surface: valid and malformed
// submissions, status, list, cancel, health.
func TestHandlerTable(t *testing.T) {
	opt := testOptions(t)
	opt.MaxActive = 1
	_, ts := newTestServer(t, opt)

	submit := []struct {
		name     string
		body     string
		wantCode int
	}{
		{"valid", `{"fuzzer":"COMFORT","cases":20,"seed":2,"testbed_limit":2}`, http.StatusAccepted},
		{"malformed json", `{"fuzzer":`, http.StatusBadRequest},
		{"unknown field", `{"fuzzer":"COMFORT","cases":5,"bogus":1}`, http.StatusBadRequest},
		{"unknown fuzzer", `{"fuzzer":"NOPE","cases":5}`, http.StatusBadRequest},
		{"zero cases", `{"fuzzer":"COMFORT","cases":0}`, http.StatusBadRequest},
		{"negative knob", `{"fuzzer":"COMFORT","cases":5,"workers":-1}`, http.StatusBadRequest},
		{"bad fault spec", `{"fuzzer":"COMFORT","cases":5,"faults":"wat=1"}`, http.StatusBadRequest},
		{"testbed limit too large", `{"fuzzer":"COMFORT","cases":5,"testbed_limit":100000}`, http.StatusBadRequest},
	}
	var created Status
	for _, tc := range submit {
		resp := postJSON(t, ts.URL+"/jobs", tc.body)
		if resp.StatusCode != tc.wantCode {
			t.Errorf("POST /jobs [%s]: code %d, want %d", tc.name, resp.StatusCode, tc.wantCode)
		}
		if tc.wantCode == http.StatusAccepted {
			decodeBody(t, resp, &created)
			if created.ID == "" || created.State != StateQueued && created.State != StateRunning {
				t.Errorf("POST /jobs [%s]: implausible created status %+v", tc.name, created)
			}
		} else {
			var e map[string]any
			decodeBody(t, resp, &e)
			if e["error"] == "" {
				t.Errorf("POST /jobs [%s]: error response carries no message", tc.name)
			}
		}
	}

	// GET /jobs lists the one accepted job.
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []Status `json:"jobs"`
	}
	decodeBody(t, resp, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != created.ID {
		t.Fatalf("GET /jobs: %+v, want exactly %s", list.Jobs, created.ID)
	}

	// GET /jobs/{id}: known and unknown.
	resp, err = http.Get(ts.URL + "/jobs/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	var one struct {
		Status     Status          `json:"status"`
		Accounting json.RawMessage `json:"accounting"`
	}
	decodeBody(t, resp, &one)
	if one.Status.ID != created.ID {
		t.Fatalf("GET /jobs/{id}: got %+v", one.Status)
	}
	resp, err = http.Get(ts.URL + "/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown job: code %d, want 404", resp.StatusCode)
	}

	// Wait for completion; the status endpoint must then embed the
	// accounting document.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err = http.Get(ts.URL + "/jobs/" + created.ID)
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, resp, &one)
		if one.Status.State == StateDone {
			break
		}
		if terminalState(one.Status.State) || time.Now().After(deadline) {
			t.Fatalf("job ended in %s (%q), want done", one.Status.State, one.Status.LastError)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var acct Accounting
	if err := json.Unmarshal(one.Accounting, &acct); err != nil {
		t.Fatalf("done job's accounting not parseable: %v", err)
	}
	if acct.CasesRun != 20 {
		t.Fatalf("accounting cases_run %d, want 20", acct.CasesRun)
	}

	// Cancel on a terminal job is a conflict.
	resp = postJSON(t, ts.URL+"/jobs/"+created.ID+"/cancel", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel done job: code %d, want 409", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/jobs/job-999999/cancel", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown job: code %d, want 404", resp.StatusCode)
	}

	// Health reports per-state counts.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK   bool           `json:"ok"`
		Jobs map[string]int `json:"jobs"`
	}
	decodeBody(t, resp, &health)
	if !health.OK || health.Jobs[StateDone] != 1 {
		t.Fatalf("healthz: %+v", health)
	}
}

// TestHandlerQueueFull pins the admission-control surface: a 503 with a
// Retry-After header, not a hung or dropped request.
func TestHandlerQueueFull(t *testing.T) {
	opt := testOptions(t)
	opt.MaxActive = 1
	opt.QueueMax = 1
	s, ts := newTestServer(t, opt)

	long := `{"fuzzer":"COMFORT","cases":100000,"seed":2,"testbed_limit":2}`
	resp := postJSON(t, ts.URL+"/jobs", long)
	var first Status
	decodeBody(t, resp, &first)
	deadline := time.Now().Add(time.Minute)
	for {
		st, _ := s.JobStatus(first.ID)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first job stuck in %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	resp = postJSON(t, ts.URL+"/jobs", long)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: code %d, want 202", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/jobs", long)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-backlog submit: code %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 carries no Retry-After header")
	}
}

// TestHandlerStream reads the SSE feed of a short job end to end: samples
// must be well-formed, progress monotone, and the stream must end (EOF)
// with the terminal sample after the job completes.
func TestHandlerStream(t *testing.T) {
	opt := testOptions(t)
	_, ts := newTestServer(t, opt)

	resp := postJSON(t, ts.URL+"/jobs", `{"fuzzer":"COMFORT","cases":40,"seed":2,"testbed_limit":4}`)
	var created Status
	decodeBody(t, resp, &created)

	stream, err := http.Get(ts.URL + "/jobs/" + created.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var samples []Sample
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		payload, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			t.Fatalf("non-SSE line %q", line)
		}
		var sample Sample
		if err := json.Unmarshal([]byte(payload), &sample); err != nil {
			t.Fatalf("bad sample %q: %v", payload, err)
		}
		if sample.JobID != created.ID {
			t.Fatalf("sample for %s on %s's stream", sample.JobID, created.ID)
		}
		samples = append(samples, sample)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("stream delivered no samples")
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Done < samples[i-1].Done {
			t.Fatalf("progress regressed: %d after %d", samples[i].Done, samples[i-1].Done)
		}
	}
	if last := samples[len(samples)-1]; last.State != StateDone {
		t.Fatalf("stream ended on %+v, want terminal done sample", last)
	}

	// Streaming an unknown job is a 404, not a hung connection.
	resp404, err := http.Get(ts.URL + "/jobs/job-999999/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("stream unknown job: code %d, want 404", resp404.StatusCode)
	}
}

// TestHandlerHealthz pins the operator surface for multi-instance
// stores: /healthz names the instance, its held-lease and self-fence
// counts, the quarantine count, and surfaces LoadJobs warnings — and a
// cancel of a job a live peer is running is a 409 naming the holder, not
// a silent success or a 500.
func TestHandlerHealthz(t *testing.T) {
	clk := newFakeClock()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A stray directory in the store produces a startup warning both
	// instances must surface.
	if err := os.MkdirAll(filepath.Join(store.Root(), "jobs", "not-a-job"), 0o755); err != nil {
		t.Fatal(err)
	}

	a, err := NewSupervisor(twoInstanceOptions(store, clk, "alpha"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Shutdown()
	created, err := a.Submit(Spec{Fuzzer: "COMFORT", Cases: 100000, Seed: 2, TestbedLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		st, _ := a.JobStatus(created.ID)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alpha's job stuck in %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	if a.LeasesHeld() != 1 {
		t.Fatalf("alpha holds %d leases, want 1", a.LeasesHeld())
	}

	// Beta serves the HTTP API over the same store; alpha's fresh lease
	// makes the job a read-only mirror there.
	_, ts := newTestServer(t, twoInstanceOptions(store, clk, "beta"))
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK       bool           `json:"ok"`
		Jobs     map[string]int `json:"jobs"`
		Instance struct {
			ID          string `json:"id"`
			LeasesHeld  int    `json:"leases_held"`
			Fences      int64  `json:"fences"`
			Quarantined int    `json:"quarantined"`
		} `json:"instance"`
		StoreWarnings []string `json:"store_warnings"`
	}
	decodeBody(t, resp, &health)
	if !health.OK {
		t.Fatalf("healthz not ok: %+v", health)
	}
	if health.Instance.ID != "beta" || health.Instance.LeasesHeld != 0 ||
		health.Instance.Fences != 0 || health.Instance.Quarantined != 0 {
		t.Fatalf("instance section %+v, want beta with no leases, fences or quarantine", health.Instance)
	}
	if health.Jobs[StateRunning] != 1 {
		t.Fatalf("beta does not mirror the peer-run job: %+v", health.Jobs)
	}
	if len(health.StoreWarnings) != 1 || !strings.Contains(health.StoreWarnings[0], "not-a-job") {
		t.Fatalf("store warnings %v, want one naming not-a-job", health.StoreWarnings)
	}

	// Cancelling alpha's running job through beta names the live holder.
	resp = postJSON(t, ts.URL+"/jobs/"+created.ID+"/cancel", "")
	var e map[string]any
	code := resp.StatusCode
	decodeBody(t, resp, &e)
	if code != http.StatusConflict {
		t.Fatalf("peer-held cancel: code %d (%v), want 409", code, e)
	}
	if msg, _ := e["error"].(string); !strings.Contains(msg, "alpha") {
		t.Fatalf("409 does not name the holding instance: %v", e)
	}
	if err := a.CancelJob(created.ID); err != nil {
		t.Fatalf("holder's own cancel: %v", err)
	}
}

// TestStoreReconstruction unit-tests LoadJobs: sequence ordering, corrupt
// directories skipped with warnings, missing statuses rebuilt from specs.
func TestStoreReconstruction(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seq int, state string) {
		sp := Spec{Fuzzer: "COMFORT", Cases: 10 * seq, Seed: int64(seq)}
		st := Status{ID: jobID(seq), Seq: seq, State: state, CasesTotal: sp.Cases}
		if err := store.CreateJob(st, sp); err != nil {
			t.Fatal(err)
		}
	}
	mk(3, StateDone)
	mk(1, StateRunning)
	mk(7, StateQueued)
	// A torn spec must be skipped with a warning, not kill the load.
	dir := store.jobDir(jobID(5))
	if err := writeAtomicSetup(dir, "spec.json", "{torn"); err != nil {
		t.Fatal(err)
	}
	// A kill between spec and first status write: status reconstructed.
	if err := writeAtomicSetup(store.jobDir(jobID(9)), "spec.json",
		`{"fuzzer":"COMFORT","cases":12,"seed":9}`); err != nil {
		t.Fatal(err)
	}

	jobs, maxSeq, warnings, err := store.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	if maxSeq != 9 {
		t.Fatalf("maxSeq %d, want 9", maxSeq)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], jobID(5)) {
		t.Fatalf("warnings %v, want one naming %s", warnings, jobID(5))
	}
	var order []string
	for _, rec := range jobs {
		order = append(order, fmt.Sprintf("%s:%s", rec.Status.ID, rec.Status.State))
	}
	want := []string{
		"job-000001:running", "job-000003:done", "job-000007:queued", "job-000009:queued",
	}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("reconstructed %v, want %v", order, want)
	}
	if jobs[3].Status.CasesTotal != 12 {
		t.Fatalf("reconstructed status lost cases_total: %+v", jobs[3].Status)
	}
}

func writeAtomicSetup(dir, name, content string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeAtomic(filepath.Join(dir, name), []byte(content))
}
