package interp

import (
	"math"
	"math/rand"
	"strings"

	"comfort/internal/js/ast"
	"comfort/internal/js/jsnum"
	"comfort/internal/js/regex"
	"comfort/internal/js/token"
)

// Config parameterises an interpreter instance.
type Config struct {
	// Fuel is the step budget standing in for wall-clock time; 0 means the
	// default budget.
	Fuel int64
	// Strict forces strict mode for the whole run (the "strict testbed").
	Strict bool
	// Hook intercepts operations for seeded engine defects.
	Hook Hook
	// Seed drives Math.random and Date.now determinism.
	Seed int64
	// MaxDepth bounds JS call recursion (RangeError beyond it).
	MaxDepth int
	// MutableFuncName makes a named function expression's self-name binding
	// writable — a seeded conformance defect (the paper's Listing 13).
	MutableFuncName bool
	// SloppyStrictAssign makes strict-mode assignment to undeclared
	// identifiers create globals silently — a seeded Strict Mode defect.
	SloppyStrictAssign bool
	// DisableCompile keeps execution on the tree-walking evaluator even
	// when the program carries thunk-compiled bodies — the differential
	// oracle and ablation knob for internal/js/compile.
	DisableCompile bool
	// DisableShapes keeps every object in classic dictionary (property map)
	// layout and turns the compiled evaluator's inline caches off — the
	// differential oracle and ablation knob for the hidden-class machinery,
	// wired through engines/exec/campaign exactly like DisableCompile.
	DisableShapes bool
	// Watchdog, when non-nil, is the wall-clock deadline probe: it is
	// polled cooperatively at the shared fuel-charge site every
	// WatchdogStride consumed steps, and a true return aborts the run with
	// AbortDeadline. The interpreter itself never reads a clock — the
	// caller decides what "too long" means (a wall-clock closure in the
	// scheduler, a deterministic countdown in the fault-injection
	// harness) — so execution stays replayable from the seed alone. Nil
	// (the default) costs one pointer test per charge and nothing else.
	Watchdog func() bool
}

// WatchdogStride is the fuel interval between Watchdog probes: small
// enough that a hung case is caught within a fraction of the default
// budget, large enough that an enabled watchdog prices at well under a
// probe per thousand charges.
const WatchdogStride = 16384

// DefaultFuel is the default step budget per program run.
const DefaultFuel = 2_000_000

// Coverage accumulates statement / function / branch coverage for one or
// more runs (the Istanbul substitute's raw data).
type Coverage struct {
	Stmts    map[int]bool
	Funcs    map[int]bool
	Branches map[[2]int]bool
}

// NewCoverage allocates an empty coverage recorder.
func NewCoverage() *Coverage {
	return &Coverage{
		Stmts:    map[int]bool{},
		Funcs:    map[int]bool{},
		Branches: map[[2]int]bool{},
	}
}

// Interp is one JavaScript runtime instance (one testbed execution).
type Interp struct {
	Global    *Object
	GlobalEnv *Env
	// Protos and Ctors are populated by the builtins package.
	Protos map[string]*Object
	Ctors  map[string]*Object

	Strict bool
	Hook   Hook
	Cov    *Coverage
	// ProtoMiss, when set, is invoked on a Protos lookup miss (see Proto)
	// so the builtins package can materialise lazily-installed sections
	// the interpreter itself depends on (the Error hierarchy).
	ProtoMiss func(kind string)
	// MutableFuncName mirrors Config.MutableFuncName.
	MutableFuncName bool
	// SloppyStrictAssign mirrors Config.SloppyStrictAssign.
	SloppyStrictAssign bool
	// DisableCompile mirrors Config.DisableCompile: Call ignores compiled
	// bodies so a thunk-annotated program tree-walks end to end.
	DisableCompile bool
	// DisableShapes mirrors Config.DisableShapes: NewObject allocates
	// dictionary-mode objects and the IC entry points fall through to the
	// generic property paths.
	DisableShapes bool

	// Out receives print() output.
	Out strings.Builder

	// rand drives Math.random deterministically; seeded lazily via Rand()
	// because most programs never observe it and seeding Go's legacy source
	// costs microseconds per interpreter instance.
	rand     *rand.Rand
	randSeed int64
	// Now is the deterministic Date.now clock (milliseconds).
	Now float64

	fuel     int64
	fuelCap  int64
	depth    int
	maxDepth int

	// watchdog mirrors Config.Watchdog; wdNext is the fuel level at or
	// below which the next probe fires (fuel counts down, so the probe
	// cadence is expressed in consumed steps and shared by both
	// evaluators' charge sites).
	watchdog func() bool
	wdNext   int64

	thisStack []Value
	// pendingLabel carries a statement label into the next loop statement so
	// labelled continue/break can match it.
	pendingLabel string

	// framePool recycles slot frames of Poolable scopes (see compiled.go);
	// per-instance, so it needs no synchronisation — one Interp is one
	// single-threaded execution. argsPool does the same for argument
	// slices of compiled calls to plain JS functions.
	framePool []*Env
	argsPool  [][]Value

	// Compiled-evaluator control registers (see compiled.go).
	ctrlLabel string
	ctrlVal   Value

	// Direct-mapped string-metrics cache (see stringMetrics): rune count
	// and ASCII-ness of recently measured strings.
	strCache [4]strMetrics

	// ics holds the per-execution inline-cache sites the compiled
	// evaluator's member-access thunks index into (see ic.go); the hit /
	// miss / megamorphic counters feed campaign.Progress.
	ics    []icSite
	icHit  uint64
	icMiss uint64
	icMega uint64

	// hookScratch is the reusable HookCtx for hook sites whose Override is
	// consumed synchronously (propset, arraygrow, functier) — see hookCtx.
	hookScratch     HookCtx
	hookScratchBusy bool
}

// New creates an interpreter without the standard library; callers normally
// use builtins.NewRuntime instead.
func New(cfg Config) *Interp {
	fuel := cfg.Fuel
	if fuel <= 0 {
		fuel = DefaultFuel
	}
	maxDepth := cfg.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 256
	}
	in := &Interp{
		// Presized past the eager stdlib sections plus the error
		// hierarchy, so realm construction never grows either map.
		Protos:             make(map[string]*Object, 16),
		Ctors:              make(map[string]*Object, 16),
		Strict:             cfg.Strict,
		Hook:               cfg.Hook,
		MutableFuncName:    cfg.MutableFuncName,
		SloppyStrictAssign: cfg.SloppyStrictAssign,
		DisableCompile:     cfg.DisableCompile,
		DisableShapes:      cfg.DisableShapes,
		randSeed:           cfg.Seed + 1,
		Now:                1_600_000_000_000,
		fuel:               fuel,
		fuelCap:            fuel,
		maxDepth:           maxDepth,
		watchdog:           cfg.Watchdog,
		wdNext:             fuel - WatchdogStride,
	}
	in.Global = in.NewObject(nil)
	in.GlobalEnv = NewEnv(nil, true)
	return in
}

// NewObject allocates a plain object with the given prototype in shape
// (hidden-class) mode, unless the interpreter runs with DisableShapes —
// the oracle configuration keeps dictionary layout everywhere.
func (in *Interp) NewObject(proto *Object) *Object {
	o := NewObject(proto)
	if !in.DisableShapes {
		o.shape = shapeRoot
	}
	return o
}

// Rand returns the deterministic Math.random source, seeding it on first
// use.
func (in *Interp) Rand() *rand.Rand {
	if in.rand == nil {
		in.rand = rand.New(rand.NewSource(in.randSeed))
	}
	return in.rand
}

// FuelUsed reports consumed steps — the deterministic time axis used by the
// differential tester's 2× timeout rule.
func (in *Interp) FuelUsed() int64 { return in.fuelCap - in.fuel }

// charge consumes n steps and reports a timeout abort when exhausted.
// When a watchdog is armed it is probed here — the one site every
// evaluator path funnels fuel through — every WatchdogStride consumed
// steps. (ChargeSeq fuses only pure step sequences, so its skipped probes
// are made up by the next unit charge.)
func (in *Interp) charge(n int64) error {
	in.fuel -= n
	if in.fuel <= 0 {
		return &Abort{Kind: AbortTimeout, Msg: "step budget exhausted"}
	}
	if in.watchdog != nil && in.fuel <= in.wdNext {
		in.wdNext = in.fuel - WatchdogStride
		if in.watchdog() {
			return &Abort{Kind: AbortDeadline, Msg: "wall-clock deadline exceeded"}
		}
	}
	return nil
}

// Burn exposes fuel charging to builtins whose cost scales with input size.
func (in *Interp) Burn(n int64) error { return in.charge(n) }

func (in *Interp) coverStmt(id int) {
	if in.Cov != nil {
		in.Cov.Stmts[id] = true
	}
}

func (in *Interp) coverFunc(id int) {
	if in.Cov != nil {
		in.Cov.Funcs[id] = true
	}
}

func (in *Interp) coverBranch(id, arm int) {
	if in.Cov != nil {
		in.Cov.Branches[[2]int{id, arm}] = true
	}
}

// Print appends a line to the captured output (the print builtin).
func (in *Interp) Print(s string) {
	in.Out.WriteString(s)
	in.Out.WriteByte('\n')
}

// ---------- control flow ----------

type ctrlKind int

const (
	ctrlNormal ctrlKind = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type ctrl struct {
	kind  ctrlKind
	label string
	val   Value
}

var ctrlOK = ctrl{}

// Run executes a parsed program in the global scope.
func (in *Interp) Run(prog *ast.Program) error {
	strict := in.Strict || prog.Strict
	env := in.GlobalEnv
	in.hoist(prog.Body, env, true, strict)
	for _, s := range prog.Body {
		c, err := in.execStmt(s, env, strict)
		if err != nil {
			return err
		}
		if c.kind != ctrlNormal {
			break
		}
	}
	return nil
}

// RunInEnv executes statements in the given environment (used by eval).
func (in *Interp) RunInEnv(prog *ast.Program, env *Env, strict bool) (Value, error) {
	strict = strict || prog.Strict
	in.hoist(prog.Body, env, env == in.GlobalEnv, strict)
	last := Undefined()
	for _, s := range prog.Body {
		c, err := in.execStmt(s, env, strict)
		if err != nil {
			return Undefined(), err
		}
		if es, ok := s.(*ast.ExprStmt); ok {
			_ = es
			last = c.val
		}
		if c.kind != ctrlNormal {
			break
		}
	}
	return last, nil
}

// hoist performs var and function-declaration hoisting into env; top-level
// hoisting additionally mirrors bindings onto the global object. The
// traversal itself is shared with the thunk compiler (ast.HoistedDecls),
// so both evaluators hoist exactly the same bindings in the same order.
func (in *Interp) hoist(body []ast.Stmt, env *Env, topLevel bool, strict bool) {
	for _, d := range ast.HoistedDecls(body) {
		if d.Fn != nil {
			fn := in.MakeFunction(d.Fn, env, strict)
			if topLevel {
				in.Global.SetSlot(d.Name, ObjValue(fn), Writable|Enumerable)
			} else {
				env.declareVar(d.Name, ObjValue(fn))
			}
			continue
		}
		if topLevel {
			if !in.Global.HasOwn(d.Name) {
				in.Global.SetSlot(d.Name, Undefined(), Writable|Enumerable)
			}
		} else {
			env.declareVar(d.Name, Undefined())
		}
	}
}

// MakeFunction builds a function object for a literal closed over env.
func (in *Interp) MakeFunction(lit *ast.FuncLit, env *Env, strict bool) *Object {
	fn := in.NewObject(in.Protos["Function"])
	fn.Class = "Function"
	fn.Fn = &FuncDef{Lit: lit, Env: env}
	if lit.Compiled != nil {
		fn.Fn.Compiled, _ = lit.Compiled.(CompiledBody)
	}
	fn.SetSlot("length", Number(float64(len(lit.Params))), Configurable)
	fn.SetSlot("name", String(lit.Name), Configurable)
	if !lit.Arrow {
		proto := in.NewObject(in.Protos["Object"])
		proto.SetSlot("constructor", ObjValue(fn), Writable|Configurable)
		fn.SetSlot("prototype", ObjValue(proto), Writable)
	}
	if strict || lit.Strict {
		fn.SetSlot("__strict__", Bool(true), 0)
	}
	if lit.Arrow {
		this := in.currentThis()
		fn.BoundThis = this
		fn.SetSlot("__arrow__", Bool(true), 0)
	}
	return fn
}

func (in *Interp) currentThis() Value {
	if n := len(in.thisStack); n > 0 {
		return in.thisStack[n-1]
	}
	if in.Strict {
		return Undefined()
	}
	return ObjValue(in.Global)
}

// ---------- statements ----------

func (in *Interp) execStmt(s ast.Stmt, env *Env, strict bool) (ctrl, error) {
	if err := in.charge(1); err != nil {
		return ctrlOK, err
	}
	in.coverStmt(s.ID())
	switch st := s.(type) {
	case *ast.VarDecl:
		return in.execVarDecl(st, env, strict)
	case *ast.FuncDecl:
		// Hoisted; nothing to do at execution time.
		return ctrlOK, nil
	case *ast.ExprStmt:
		v, err := in.evalExpr(st.X, env, strict)
		if err != nil {
			return ctrlOK, err
		}
		return ctrl{val: v}, nil
	case *ast.BlockStmt:
		return in.execStmts(st.Body, in.scopeEnv(env, st.Scope), strict)
	case *ast.EmptyStmt, *ast.DebuggerStmt:
		return ctrlOK, nil
	case *ast.IfStmt:
		cond, err := in.evalExpr(st.Cond, env, strict)
		if err != nil {
			return ctrlOK, err
		}
		if ToBoolean(cond) {
			in.coverBranch(st.ID(), 0)
			return in.execStmt(st.Then, env, strict)
		}
		in.coverBranch(st.ID(), 1)
		if st.Else != nil {
			return in.execStmt(st.Else, env, strict)
		}
		return ctrlOK, nil
	case *ast.WhileStmt:
		return in.execLoop(env, strict, nil, st.Cond, nil, st.Body, st.ID(), false)
	case *ast.DoWhileStmt:
		return in.execLoop(env, strict, nil, st.Cond, nil, st.Body, st.ID(), true)
	case *ast.ForStmt:
		label := in.pendingLabel
		in.pendingLabel = ""
		loopEnv := in.scopeEnv(env, st.Scope)
		switch init := st.Init.(type) {
		case *ast.VarDecl:
			if _, err := in.execVarDecl(init, loopEnv, strict); err != nil {
				return ctrlOK, err
			}
		case ast.Expr:
			if _, err := in.evalExpr(init, loopEnv, strict); err != nil {
				return ctrlOK, err
			}
		}
		in.pendingLabel = label
		return in.execLoop(loopEnv, strict, nil, st.Cond, st.Post, st.Body, st.ID(), false)
	case *ast.ForInStmt:
		return in.execForIn(st, env, strict)
	case *ast.SwitchStmt:
		return in.execSwitch(st, env, strict)
	case *ast.BreakStmt:
		return ctrl{kind: ctrlBreak, label: st.Label}, nil
	case *ast.ContinueStmt:
		return ctrl{kind: ctrlContinue, label: st.Label}, nil
	case *ast.ReturnStmt:
		v := Undefined()
		if st.X != nil {
			var err error
			v, err = in.evalExpr(st.X, env, strict)
			if err != nil {
				return ctrlOK, err
			}
		}
		return ctrl{kind: ctrlReturn, val: v}, nil
	case *ast.ThrowStmt:
		v, err := in.evalExpr(st.X, env, strict)
		if err != nil {
			return ctrlOK, err
		}
		return ctrlOK, &Throw{Val: v}
	case *ast.TryStmt:
		return in.execTry(st, env, strict)
	case *ast.LabeledStmt:
		in.pendingLabel = st.Label
		c, err := in.execStmt(st.Body, env, strict)
		in.pendingLabel = ""
		if err != nil {
			return ctrlOK, err
		}
		if c.kind == ctrlBreak && c.label == st.Label {
			return ctrlOK, nil
		}
		if c.kind == ctrlContinue && c.label == st.Label {
			return ctrlOK, nil
		}
		return c, nil
	default:
		return ctrlOK, in.Throwf("InternalError", "unsupported statement %T", s)
	}
}

func (in *Interp) execStmts(body []ast.Stmt, env *Env, strict bool) (ctrl, error) {
	for _, s := range body {
		c, err := in.execStmt(s, env, strict)
		if err != nil {
			return ctrlOK, err
		}
		if c.kind != ctrlNormal {
			return c, nil
		}
	}
	return ctrlOK, nil
}

func (in *Interp) execVarDecl(st *ast.VarDecl, env *Env, strict bool) (ctrl, error) {
	for _, d := range st.Decls {
		var v Value
		if d.Init != nil {
			var err error
			v, err = in.evalExpr(d.Init, env, strict)
			if err != nil {
				return ctrlOK, err
			}
			if fn, ok := d.Init.(*ast.FuncLit); ok && fn.Name == "" && v.IsObject() {
				v.Obj().SetSlot("name", String(d.Name), Configurable)
			}
		}
		if d.Ref.Kind == ast.RefSlot {
			b := env.at(d.Ref.Depth, d.Ref.Slot)
			switch st.Kind {
			case ast.Var:
				b.declareVarWrite(v)
			case ast.Let:
				*b = binding{v: v, mutable: true, live: true}
			case ast.Const:
				*b = binding{v: v, mutable: false, live: true}
			}
			continue
		}
		switch st.Kind {
		case ast.Var:
			if env == in.GlobalEnv {
				in.Global.SetSlot(d.Name, v, Writable|Enumerable)
			} else {
				env.declareVar(d.Name, v)
			}
		case ast.Let:
			env.declareLexical(d.Name, v, true)
		case ast.Const:
			env.declareLexical(d.Name, v, false)
		}
	}
	return ctrlOK, nil
}

// execLoop runs while/do-while/for bodies with break/continue handling.
func (in *Interp) execLoop(env *Env, strict bool, _ ast.Expr, cond, post ast.Expr,
	body ast.Stmt, nodeID int, doWhile bool) (ctrl, error) {
	myLabel := in.pendingLabel
	in.pendingLabel = ""
	first := true
	for {
		if err := in.charge(1); err != nil {
			return ctrlOK, err
		}
		if !(doWhile && first) && cond != nil {
			cv, err := in.evalExpr(cond, env, strict)
			if err != nil {
				return ctrlOK, err
			}
			if !ToBoolean(cv) {
				in.coverBranch(nodeID, 1)
				return ctrlOK, nil
			}
			in.coverBranch(nodeID, 0)
		}
		first = false
		c, err := in.execStmt(body, env, strict)
		if err != nil {
			return ctrlOK, err
		}
		switch c.kind {
		case ctrlBreak:
			if c.label == "" || c.label == myLabel {
				return ctrlOK, nil
			}
			return c, nil
		case ctrlContinue:
			if c.label != "" && c.label != myLabel {
				return c, nil
			}
		case ctrlReturn:
			return c, nil
		}
		if doWhile && cond != nil {
			cv, err := in.evalExpr(cond, env, strict)
			if err != nil {
				return ctrlOK, err
			}
			if !ToBoolean(cv) {
				return ctrlOK, nil
			}
			// Re-enter loop without re-testing at top.
			first = true
		}
		if post != nil {
			if _, err := in.evalExpr(post, env, strict); err != nil {
				return ctrlOK, err
			}
		}
	}
}

func (in *Interp) execForIn(st *ast.ForInStmt, env *Env, strict bool) (ctrl, error) {
	myLabel := in.pendingLabel
	in.pendingLabel = ""
	obj, err := in.evalExpr(st.Obj, env, strict)
	if err != nil {
		return ctrlOK, err
	}
	loopEnv := in.scopeEnv(env, st.Scope)
	assign := func(v Value) error {
		switch st.Decl {
		case ast.Let, ast.Const:
			if st.NameRef.Kind == ast.RefSlot {
				// The map evaluator declares both kinds mutable here.
				loopEnv.slots[st.NameRef.Slot] = binding{v: v, mutable: true, live: true}
				return nil
			}
			loopEnv.declareLexical(st.Name, v, true)
			return nil
		case ast.Var:
			if st.NameRef.Kind == ast.RefSlot {
				loopEnv.at(st.NameRef.Depth, st.NameRef.Slot).declareVarWrite(v)
				return nil
			}
			loopEnv.declareVar(st.Name, v)
			return nil
		default:
			return in.assignIdentRef(st.Name, st.NameRef, v, loopEnv, strict)
		}
	}
	var items []Value
	if st.Of {
		items, err = in.iterate(obj)
	} else {
		// Nullish objects enumerate nothing (nil items, zero iterations).
		items, err = in.ForInKeys(obj)
	}
	if err != nil {
		return ctrlOK, err
	}
	for _, item := range items {
		if err := in.charge(1); err != nil {
			return ctrlOK, err
		}
		if err := assign(item); err != nil {
			return ctrlOK, err
		}
		c, err := in.execStmt(st.Body, loopEnv, strict)
		if err != nil {
			return ctrlOK, err
		}
		switch c.kind {
		case ctrlBreak:
			if c.label == "" || c.label == myLabel {
				return ctrlOK, nil
			}
			return c, nil
		case ctrlContinue:
			if c.label != "" && c.label != myLabel {
				return c, nil
			}
		case ctrlReturn:
			return c, nil
		}
	}
	return ctrlOK, nil
}

// iterate implements for-of over the iterable kinds the subset supports.
func (in *Interp) iterate(v Value) ([]Value, error) {
	if v.Kind() == KindString {
		var out []Value
		for _, r := range v.Str() {
			out = append(out, String(string(r)))
		}
		return out, nil
	}
	if v.IsObject() {
		o := v.Obj()
		if o.IsArray() {
			return append([]Value(nil), o.elems...), nil
		}
		if o.ElemKind != ElemNone && o.Class != "DataView" {
			var out []Value
			for i := 0; i < o.ArrayLen; i++ {
				out = append(out, Number(o.typedGet(i)))
			}
			return out, nil
		}
		if o.Class == "String" && o.HasPrim {
			return in.iterate(o.Prim)
		}
	}
	return nil, in.TypeErrorf("%s is not iterable", TypeOf(v))
}

func (in *Interp) execSwitch(st *ast.SwitchStmt, env *Env, strict bool) (ctrl, error) {
	disc, err := in.evalExpr(st.Disc, env, strict)
	if err != nil {
		return ctrlOK, err
	}
	inner := in.scopeEnv(env, st.Scope)
	matched := -1
	for i, c := range st.Cases {
		if c.Test == nil {
			continue
		}
		tv, err := in.evalExpr(c.Test, inner, strict)
		if err != nil {
			return ctrlOK, err
		}
		if SameValueStrict(disc, tv) {
			matched = i
			break
		}
	}
	if matched < 0 {
		for i, c := range st.Cases {
			if c.Test == nil {
				matched = i
				break
			}
		}
	}
	if matched < 0 {
		return ctrlOK, nil
	}
	in.coverBranch(st.ID(), matched)
	for i := matched; i < len(st.Cases); i++ {
		for _, s := range st.Cases[i].Body {
			c, err := in.execStmt(s, inner, strict)
			if err != nil {
				return ctrlOK, err
			}
			switch c.kind {
			case ctrlBreak:
				if c.label == "" {
					return ctrlOK, nil
				}
				return c, nil
			case ctrlContinue, ctrlReturn:
				return c, nil
			}
		}
	}
	return ctrlOK, nil
}

func (in *Interp) execTry(st *ast.TryStmt, env *Env, strict bool) (ctrl, error) {
	c, err := in.execStmts(st.Block.Body, in.scopeEnv(env, st.Block.Scope), strict)
	if err != nil {
		if t, ok := IsThrow(err); ok && st.Catch != nil {
			catchEnv := in.scopeEnv(env, st.Catch.Scope)
			if st.CatchParam != "" {
				if sc := st.Catch.Scope; sc != nil && sc.CatchParamSlot >= 0 {
					catchEnv.slots[sc.CatchParamSlot] = binding{v: t.Val, mutable: true, live: true}
				} else {
					catchEnv.declareLexical(st.CatchParam, t.Val, true)
				}
			}
			c, err = in.execStmts(st.Catch.Body, catchEnv, strict)
		}
	}
	if st.Finally != nil {
		fc, ferr := in.execStmts(st.Finally.Body, in.scopeEnv(env, st.Finally.Scope), strict)
		if ferr != nil {
			return ctrlOK, ferr
		}
		if fc.kind != ctrlNormal {
			return fc, nil
		}
	}
	return c, err
}

// ---------- expressions ----------

func (in *Interp) evalExpr(e ast.Expr, env *Env, strict bool) (Value, error) {
	if err := in.charge(1); err != nil {
		return Undefined(), err
	}
	switch x := e.(type) {
	case *ast.Ident:
		return in.lookupIdentRef(x, env)
	case *ast.NumberLit:
		return Number(x.Value), nil
	case *ast.StringLit:
		return String(x.Value), nil
	case *ast.BoolLit:
		return Bool(x.Value), nil
	case *ast.NullLit:
		return Null(), nil
	case *ast.ThisExpr:
		return in.currentThis(), nil
	case *ast.RegexLit:
		return in.NewRegExp(x.Pattern, x.Flags)
	case *ast.TemplateLit:
		var b strings.Builder
		for i, q := range x.Quasis {
			b.WriteString(q)
			if i < len(x.Exprs) {
				v, err := in.evalExpr(x.Exprs[i], env, strict)
				if err != nil {
					return Undefined(), err
				}
				s, err := in.ToString(v)
				if err != nil {
					return Undefined(), err
				}
				b.WriteString(s)
			}
		}
		return String(b.String()), nil
	case *ast.ArrayLit:
		arr := in.NewArray(nil)
		for _, el := range x.Elems {
			if el == nil {
				arr.AppendElem(Undefined())
				continue
			}
			if sp, ok := el.(*ast.SpreadExpr); ok {
				sv, err := in.evalExpr(sp.X, env, strict)
				if err != nil {
					return Undefined(), err
				}
				items, err := in.iterate(sv)
				if err != nil {
					return Undefined(), err
				}
				for _, item := range items {
					arr.AppendElem(item)
				}
				continue
			}
			v, err := in.evalExpr(el, env, strict)
			if err != nil {
				return Undefined(), err
			}
			arr.AppendElem(v)
		}
		return ObjValue(arr), nil
	case *ast.ObjectLit:
		return in.evalObjectLit(x, env, strict)
	case *ast.FuncLit:
		return ObjValue(in.MakeFunction(x, env, strict)), nil
	case *ast.UnaryExpr:
		return in.evalUnary(x, env, strict)
	case *ast.UpdateExpr:
		return in.evalUpdate(x, env, strict)
	case *ast.BinaryExpr:
		return in.evalBinary(x, env, strict)
	case *ast.LogicalExpr:
		return in.evalLogical(x, env, strict)
	case *ast.AssignExpr:
		return in.evalAssign(x, env, strict)
	case *ast.CondExpr:
		cv, err := in.evalExpr(x.Cond, env, strict)
		if err != nil {
			return Undefined(), err
		}
		if ToBoolean(cv) {
			in.coverBranch(x.ID(), 0)
			return in.evalExpr(x.Then, env, strict)
		}
		in.coverBranch(x.ID(), 1)
		return in.evalExpr(x.Else, env, strict)
	case *ast.CallExpr:
		return in.evalCall(x, env, strict)
	case *ast.NewExpr:
		return in.evalNew(x, env, strict)
	case *ast.MemberExpr:
		if x.Computed {
			obj, kv, err := in.evalComputedParts(x, env, strict)
			if err != nil {
				return Undefined(), err
			}
			return in.getPropByValue(obj, kv)
		}
		obj, err := in.evalExpr(x.Obj, env, strict)
		if err != nil {
			return Undefined(), err
		}
		return in.GetPropKey(obj, x.Name)
	case *ast.SeqExpr:
		var last Value
		for _, sub := range x.Exprs {
			var err error
			last, err = in.evalExpr(sub, env, strict)
			if err != nil {
				return Undefined(), err
			}
		}
		return last, nil
	case *ast.SpreadExpr:
		return Undefined(), in.SyntaxErrorf("unexpected spread element")
	default:
		return Undefined(), in.Throwf("InternalError", "unsupported expression %T", e)
	}
}

func (in *Interp) evalObjectLit(x *ast.ObjectLit, env *Env, strict bool) (Value, error) {
	o := in.NewObject(in.Protos["Object"])
	for _, prop := range x.Props {
		key := prop.Key
		if prop.Computed {
			kv, err := in.evalExpr(prop.KeyExpr, env, strict)
			if err != nil {
				return Undefined(), err
			}
			key, err = in.ToPropertyKey(kv)
			if err != nil {
				return Undefined(), err
			}
		}
		switch prop.Kind {
		case ast.PropInit:
			v, err := in.evalExpr(prop.Value, env, strict)
			if err != nil {
				return Undefined(), err
			}
			o.SetSlot(key, v, DefaultAttr)
		case ast.PropGet, ast.PropSet:
			fnLit := prop.Value.(*ast.FuncLit)
			fn := in.MakeFunction(fnLit, env, strict)
			existing, ok := o.props[key]
			if !ok || !existing.Accessor {
				existing = &Property{Accessor: true, Attr: Enumerable | Configurable}
				o.DefineOwn(key, existing)
			}
			if prop.Kind == ast.PropGet {
				existing.Get = fn
			} else {
				existing.Set = fn
			}
		}
	}
	return ObjValue(o), nil
}

// lookupIdentRef reads an identifier through its resolved reference: a slot
// access for provable bindings, a direct global lookup when no scope can
// intervene, and the dynamic chain walk otherwise.
func (in *Interp) lookupIdentRef(x *ast.Ident, env *Env) (Value, error) {
	switch x.Ref.Kind {
	case ast.RefSlot:
		return env.at(x.Ref.Depth, x.Ref.Slot).v, nil
	case ast.RefGlobal:
		return in.lookupGlobal(x.Name)
	}
	return in.lookupIdent(x.Name, env)
}

func (in *Interp) lookupIdent(name string, env *Env) (Value, error) {
	if b, ok := env.lookup(name); ok {
		return b.v, nil
	}
	return in.lookupGlobalTail(name)
}

// lookupGlobal resolves a name on the global environment (top-level
// lexical bindings) and then the global object — the RefGlobal fast path.
func (in *Interp) lookupGlobal(name string) (Value, error) {
	if b, ok := in.GlobalEnv.lookup(name); ok {
		return b.v, nil
	}
	return in.lookupGlobalTail(name)
}

func (in *Interp) lookupGlobalTail(name string) (Value, error) {
	if name == "undefined" {
		return Undefined(), nil
	}
	if name == "globalThis" {
		return ObjValue(in.Global), nil
	}
	// Fall back to the global object (including its prototype chain).
	if v, ok, err := in.getPropOnObject(in.Global, name); err != nil {
		return Undefined(), err
	} else if ok {
		return v, nil
	}
	return Undefined(), in.ReferenceErrorf("%s is not defined", name)
}

// assignBinding writes v through a resolved binding, honouring mutability
// and the function-self-name rules.
func (in *Interp) assignBinding(b *binding, v Value, strict bool) error {
	if !b.mutable {
		if b.silent && !strict && !in.MutableFuncName {
			return nil // sloppy-mode write to a function self-name
		}
		if b.silent && in.MutableFuncName {
			// Seeded defect (Montage Listing-13 case): the engine treats
			// the function self-name binding as an ordinary variable.
			b.v = v
			return nil
		}
		return in.TypeErrorf("Assignment to constant variable.")
	}
	b.v = v
	return nil
}

// assignIdentRef writes an identifier through its resolved reference.
func (in *Interp) assignIdentRef(name string, ref ast.ScopeRef, v Value, env *Env, strict bool) error {
	switch ref.Kind {
	case ast.RefSlot:
		return in.assignBinding(env.at(ref.Depth, ref.Slot), v, strict)
	case ast.RefGlobal:
		if b, ok := in.GlobalEnv.lookup(name); ok {
			return in.assignBinding(b, v, strict)
		}
		return in.assignGlobalTail(name, v, strict)
	}
	return in.assignIdent(name, v, env, strict)
}

func (in *Interp) assignIdent(name string, v Value, env *Env, strict bool) error {
	if b, ok := env.lookup(name); ok {
		return in.assignBinding(b, v, strict)
	}
	return in.assignGlobalTail(name, v, strict)
}

func (in *Interp) assignGlobalTail(name string, v Value, strict bool) error {
	if in.Global.HasOwn(name) {
		return in.SetProp(ObjValue(in.Global), name, v, strict)
	}
	if strict && !in.SloppyStrictAssign {
		return in.ReferenceErrorf("%s is not defined", name)
	}
	in.Global.SetSlot(name, v, DefaultAttr)
	return nil
}

func (in *Interp) evalMemberParts(x *ast.MemberExpr, env *Env, strict bool) (Value, string, error) {
	obj, err := in.evalExpr(x.Obj, env, strict)
	if err != nil {
		return Undefined(), "", err
	}
	if !x.Computed {
		return obj, x.Name, nil
	}
	kv, err := in.evalExpr(x.Prop, env, strict)
	if err != nil {
		return Undefined(), "", err
	}
	key, err := in.ToPropertyKey(kv)
	if err != nil {
		return Undefined(), "", err
	}
	return obj, key, nil
}

func (in *Interp) evalUnary(x *ast.UnaryExpr, env *Env, strict bool) (Value, error) {
	if x.Op == token.TYPEOF {
		if id, ok := x.X.(*ast.Ident); ok {
			switch id.Ref.Kind {
			case ast.RefSlot:
				// Provably declared — fall through and evaluate.
			case ast.RefGlobal:
				if !in.GlobalEnv.Has(id.Name) && !in.hasGlobal(id.Name) &&
					id.Name != "undefined" && id.Name != "globalThis" {
					return String("undefined"), nil
				}
			default:
				if !env.Has(id.Name) && !in.hasGlobal(id.Name) &&
					id.Name != "undefined" && id.Name != "globalThis" {
					return String("undefined"), nil
				}
			}
		}
		v, err := in.evalExpr(x.X, env, strict)
		if err != nil {
			return Undefined(), err
		}
		return String(TypeOf(v)), nil
	}
	if x.Op == token.DELETE {
		if m, ok := x.X.(*ast.MemberExpr); ok {
			obj, key, err := in.evalMemberParts(m, env, strict)
			if err != nil {
				return Undefined(), err
			}
			if !obj.IsObject() {
				return Bool(true), nil
			}
			ok := obj.Obj().DeleteOwn(key)
			if !ok && strict {
				return Undefined(), in.TypeErrorf("Cannot delete property '%s'", key)
			}
			return Bool(ok), nil
		}
		if id, ok := x.X.(*ast.Ident); ok {
			switch id.Ref.Kind {
			case ast.RefSlot:
				return Bool(false), nil
			case ast.RefGlobal:
				if in.GlobalEnv.Has(id.Name) {
					return Bool(false), nil
				}
			default:
				if env.Has(id.Name) {
					return Bool(false), nil
				}
			}
			return Bool(in.Global.DeleteOwn(id.Name)), nil
		}
		// delete of a non-reference evaluates the operand and returns true.
		if _, err := in.evalExpr(x.X, env, strict); err != nil {
			return Undefined(), err
		}
		return Bool(true), nil
	}
	v, err := in.evalExpr(x.X, env, strict)
	if err != nil {
		return Undefined(), err
	}
	switch x.Op {
	case token.NOT:
		return Bool(!ToBoolean(v)), nil
	case token.MINUS:
		n, err := in.ToNumber(v)
		if err != nil {
			return Undefined(), err
		}
		return Number(-n), nil
	case token.PLUS:
		n, err := in.ToNumber(v)
		if err != nil {
			return Undefined(), err
		}
		return Number(n), nil
	case token.BNOT:
		n, err := in.ToNumber(v)
		if err != nil {
			return Undefined(), err
		}
		return Number(float64(^jsnum.ToInt32(n))), nil
	case token.VOID:
		return Undefined(), nil
	}
	return Undefined(), in.Throwf("InternalError", "unsupported unary %s", x.Op)
}

func (in *Interp) hasGlobal(name string) bool {
	for cur := in.Global; cur != nil; cur = cur.Proto {
		if cur.HasOwn(name) {
			return true
		}
	}
	return false
}

func (in *Interp) evalUpdate(x *ast.UpdateExpr, env *Env, strict bool) (Value, error) {
	old, setter, err := in.evalRef(x.X, env, strict)
	if err != nil {
		return Undefined(), err
	}
	n, err := in.ToNumber(old)
	if err != nil {
		return Undefined(), err
	}
	delta := 1.0
	if x.Op == token.DEC {
		delta = -1
	}
	nv := Number(n + delta)
	if err := setter(nv); err != nil {
		return Undefined(), err
	}
	if x.Prefix {
		return nv, nil
	}
	return Number(n), nil
}

// evalRef evaluates an assignable expression to its current value plus a
// setter closure.
func (in *Interp) evalRef(e ast.Expr, env *Env, strict bool) (Value, func(Value) error, error) {
	switch t := e.(type) {
	case *ast.Ident:
		v, err := in.lookupIdentRef(t, env)
		if err != nil {
			if _, isThrow := IsThrow(err); !isThrow {
				return Undefined(), nil, err
			}
			// Unresolved identifier: reads throw, but the setter may create
			// a global in sloppy mode.
			if strict {
				return Undefined(), nil, err
			}
			v = Undefined()
			err = nil
		}
		return v, func(nv Value) error { return in.assignIdentRef(t.Name, t.Ref, nv, env, strict) }, nil
	case *ast.MemberExpr:
		obj, key, err := in.evalMemberParts(t, env, strict)
		if err != nil {
			return Undefined(), nil, err
		}
		cur, err := in.GetPropKey(obj, key)
		if err != nil {
			return Undefined(), nil, err
		}
		return cur, func(nv Value) error { return in.SetProp(obj, key, nv, strict) }, nil
	}
	return Undefined(), nil, in.SyntaxErrorf("invalid assignment target")
}

func (in *Interp) evalAssign(x *ast.AssignExpr, env *Env, strict bool) (Value, error) {
	// Plain assignment evaluates RHS after resolving the reference.
	if x.Op == token.ASSIGN {
		switch t := x.L.(type) {
		case *ast.Ident:
			v, err := in.evalExpr(x.R, env, strict)
			if err != nil {
				return Undefined(), err
			}
			if fn, ok := x.R.(*ast.FuncLit); ok && fn.Name == "" && v.IsObject() {
				v.Obj().SetSlot("name", String(t.Name), Configurable)
			}
			if err := in.assignIdentRef(t.Name, t.Ref, v, env, strict); err != nil {
				return Undefined(), err
			}
			return v, nil
		case *ast.MemberExpr:
			if t.Computed {
				obj, kv, err := in.evalComputedParts(t, env, strict)
				if err != nil {
					return Undefined(), err
				}
				v, err := in.evalExpr(x.R, env, strict)
				if err != nil {
					return Undefined(), err
				}
				if err := in.setPropByValue(obj, kv, v, strict); err != nil {
					return Undefined(), err
				}
				return v, nil
			}
			obj, err := in.evalExpr(t.Obj, env, strict)
			if err != nil {
				return Undefined(), err
			}
			v, err := in.evalExpr(x.R, env, strict)
			if err != nil {
				return Undefined(), err
			}
			if err := in.SetProp(obj, t.Name, v, strict); err != nil {
				return Undefined(), err
			}
			return v, nil
		default:
			return Undefined(), in.SyntaxErrorf("invalid assignment target")
		}
	}
	// Logical assignment short-circuits.
	switch x.Op {
	case token.LOGANDASSIGN, token.LOGORASSIGN, token.NULLISHASSIGN:
		cur, setter, err := in.evalRef(x.L, env, strict)
		if err != nil {
			return Undefined(), err
		}
		doAssign := false
		switch x.Op {
		case token.LOGANDASSIGN:
			doAssign = ToBoolean(cur)
		case token.LOGORASSIGN:
			doAssign = !ToBoolean(cur)
		case token.NULLISHASSIGN:
			doAssign = cur.IsNullish()
		}
		if !doAssign {
			return cur, nil
		}
		v, err := in.evalExpr(x.R, env, strict)
		if err != nil {
			return Undefined(), err
		}
		return v, setter(v)
	}
	cur, setter, err := in.evalRef(x.L, env, strict)
	if err != nil {
		return Undefined(), err
	}
	rhs, err := in.evalExpr(x.R, env, strict)
	if err != nil {
		return Undefined(), err
	}
	var binOp token.Type
	switch x.Op {
	case token.PLUSASSIGN:
		binOp = token.PLUS
	case token.MINUSASSIGN:
		binOp = token.MINUS
	case token.STARASSIGN:
		binOp = token.STAR
	case token.SLASHASSIGN:
		binOp = token.SLASH
	case token.PERCENTASSIGN:
		binOp = token.PERCENT
	case token.POWASSIGN:
		binOp = token.POW
	case token.SHLASSIGN:
		binOp = token.SHL
	case token.SHRASSIGN:
		binOp = token.SHR
	case token.USHRASSIGN:
		binOp = token.USHR
	case token.ANDASSIGN:
		binOp = token.AND
	case token.ORASSIGN:
		binOp = token.OR
	case token.XORASSIGN:
		binOp = token.XOR
	default:
		return Undefined(), in.SyntaxErrorf("unsupported assignment operator")
	}
	v, err := in.applyBinary(binOp, cur, rhs)
	if err != nil {
		return Undefined(), err
	}
	return v, setter(v)
}

func (in *Interp) evalLogical(x *ast.LogicalExpr, env *Env, strict bool) (Value, error) {
	l, err := in.evalExpr(x.L, env, strict)
	if err != nil {
		return Undefined(), err
	}
	switch x.Op {
	case token.LOGAND:
		if !ToBoolean(l) {
			in.coverBranch(x.ID(), 1)
			return l, nil
		}
	case token.LOGOR:
		if ToBoolean(l) {
			in.coverBranch(x.ID(), 1)
			return l, nil
		}
	case token.NULLISH:
		if !l.IsNullish() {
			in.coverBranch(x.ID(), 1)
			return l, nil
		}
	}
	in.coverBranch(x.ID(), 0)
	return in.evalExpr(x.R, env, strict)
}

func (in *Interp) evalBinary(x *ast.BinaryExpr, env *Env, strict bool) (Value, error) {
	l, err := in.evalExpr(x.L, env, strict)
	if err != nil {
		return Undefined(), err
	}
	r, err := in.evalExpr(x.R, env, strict)
	if err != nil {
		return Undefined(), err
	}
	return in.applyBinary(x.Op, l, r)
}

func (in *Interp) applyBinary(op token.Type, l, r Value) (Value, error) {
	switch op {
	case token.PLUS:
		lp, err := in.ToPrimitive(l, "")
		if err != nil {
			return Undefined(), err
		}
		rp, err := in.ToPrimitive(r, "")
		if err != nil {
			return Undefined(), err
		}
		if lp.Kind() == KindString || rp.Kind() == KindString {
			ls, err := in.ToString(lp)
			if err != nil {
				return Undefined(), err
			}
			rs, err := in.ToString(rp)
			if err != nil {
				return Undefined(), err
			}
			return String(ls + rs), nil
		}
		ln, err := in.ToNumber(lp)
		if err != nil {
			return Undefined(), err
		}
		rn, err := in.ToNumber(rp)
		if err != nil {
			return Undefined(), err
		}
		return Number(ln + rn), nil
	case token.MINUS, token.STAR, token.SLASH, token.PERCENT, token.POW:
		ln, err := in.ToNumber(l)
		if err != nil {
			return Undefined(), err
		}
		rn, err := in.ToNumber(r)
		if err != nil {
			return Undefined(), err
		}
		switch op {
		case token.MINUS:
			return Number(ln - rn), nil
		case token.STAR:
			return Number(ln * rn), nil
		case token.SLASH:
			return Number(ln / rn), nil
		case token.PERCENT:
			return Number(math.Mod(ln, rn)), nil
		default:
			return Number(math.Pow(ln, rn)), nil
		}
	case token.EQ:
		eq, err := in.LooseEquals(l, r)
		if err != nil {
			return Undefined(), err
		}
		return Bool(eq), nil
	case token.NEQ:
		eq, err := in.LooseEquals(l, r)
		if err != nil {
			return Undefined(), err
		}
		return Bool(!eq), nil
	case token.STRICTEQ:
		return Bool(SameValueStrict(l, r)), nil
	case token.STRICTNE:
		return Bool(!SameValueStrict(l, r)), nil
	case token.LT:
		b, err := in.Compare("<", l, r)
		return Bool(b), err
	case token.GT:
		b, err := in.Compare(">", l, r)
		return Bool(b), err
	case token.LE:
		b, err := in.Compare("<=", l, r)
		return Bool(b), err
	case token.GE:
		b, err := in.Compare(">=", l, r)
		return Bool(b), err
	case token.AND, token.OR, token.XOR, token.SHL, token.SHR:
		ln, err := in.ToNumber(l)
		if err != nil {
			return Undefined(), err
		}
		rn, err := in.ToNumber(r)
		if err != nil {
			return Undefined(), err
		}
		li := jsnum.ToInt32(ln)
		shift := uint32(jsnum.ToUint32(rn)) & 31
		switch op {
		case token.AND:
			return Number(float64(li & jsnum.ToInt32(rn))), nil
		case token.OR:
			return Number(float64(li | jsnum.ToInt32(rn))), nil
		case token.XOR:
			return Number(float64(li ^ jsnum.ToInt32(rn))), nil
		case token.SHL:
			return Number(float64(li << shift)), nil
		default:
			return Number(float64(li >> shift)), nil
		}
	case token.USHR:
		ln, err := in.ToNumber(l)
		if err != nil {
			return Undefined(), err
		}
		rn, err := in.ToNumber(r)
		if err != nil {
			return Undefined(), err
		}
		return Number(float64(jsnum.ToUint32(ln) >> (jsnum.ToUint32(rn) & 31))), nil
	case token.IN:
		if !r.IsObject() {
			return Undefined(), in.TypeErrorf("Cannot use 'in' operator to search in %s", TypeOf(r))
		}
		key, err := in.ToPropertyKey(l)
		if err != nil {
			return Undefined(), err
		}
		for cur := r.Obj(); cur != nil; cur = cur.Proto {
			if cur.HasOwn(key) {
				return Bool(true), nil
			}
		}
		return Bool(false), nil
	case token.INSTANCEOF:
		if !r.IsObject() || !r.Obj().IsCallable() {
			return Undefined(), in.TypeErrorf("Right-hand side of 'instanceof' is not callable")
		}
		if !l.IsObject() {
			return Bool(false), nil
		}
		protoV, err := in.GetProp(r, "prototype")
		if err != nil {
			return Undefined(), err
		}
		if !protoV.IsObject() {
			return Undefined(), in.TypeErrorf("Function has non-object prototype")
		}
		target := protoV.Obj()
		for cur := l.Obj().Proto; cur != nil; cur = cur.Proto {
			if cur == target {
				return Bool(true), nil
			}
		}
		return Bool(false), nil
	}
	return Undefined(), in.Throwf("InternalError", "unsupported binary operator %s", op)
}

// ---------- calls ----------

func (in *Interp) evalCall(x *ast.CallExpr, env *Env, strict bool) (Value, error) {
	var thisVal Value
	var fnVal Value
	var err error
	if m, ok := x.Callee.(*ast.MemberExpr); ok {
		obj, key, err2 := in.evalMemberParts(m, env, strict)
		if err2 != nil {
			return Undefined(), err2
		}
		fnVal, err = in.GetPropKey(obj, key)
		if err != nil {
			return Undefined(), err
		}
		thisVal = obj
	} else {
		fnVal, err = in.evalExpr(x.Callee, env, strict)
		if err != nil {
			return Undefined(), err
		}
		if in.Strict || strict {
			thisVal = Undefined()
		} else {
			thisVal = ObjValue(in.Global)
		}
	}
	args, err := in.evalArgs(x.Args, env, strict)
	if err != nil {
		return Undefined(), err
	}
	if !fnVal.IsObject() || !fnVal.Obj().IsCallable() {
		name := describeCallee(x.Callee)
		return Undefined(), in.TypeErrorf("%s is not a function", name)
	}
	return in.Call(fnVal.Obj(), thisVal, args)
}

func describeCallee(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.MemberExpr:
		if !t.Computed {
			return describeCallee(t.Obj) + "." + t.Name
		}
		return describeCallee(t.Obj) + "[...]"
	default:
		return "expression"
	}
}

func (in *Interp) evalArgs(exprs []ast.Expr, env *Env, strict bool) ([]Value, error) {
	var args []Value
	for _, a := range exprs {
		if sp, ok := a.(*ast.SpreadExpr); ok {
			sv, err := in.evalExpr(sp.X, env, strict)
			if err != nil {
				return nil, err
			}
			items, err := in.iterate(sv)
			if err != nil {
				return nil, err
			}
			args = append(args, items...)
			continue
		}
		v, err := in.evalExpr(a, env, strict)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	return args, nil
}

// Call invokes fn with the given this and arguments. The depth guard
// lives here; the body runs in call1 so the unwind is a plain decrement
// instead of a deferred closure (Call is the hottest shared entry point —
// two defers per invocation showed up in campaign profiles).
func (in *Interp) Call(fn *Object, this Value, args []Value) (Value, error) {
	if err := in.charge(4); err != nil {
		return Undefined(), err
	}
	in.depth++
	v, err := in.call1(fn, this, args)
	in.depth--
	return v, err
}

func (in *Interp) call1(fn *Object, this Value, args []Value) (Value, error) {
	if in.depth > in.maxDepth {
		return Undefined(), in.RangeErrorf("Maximum call stack size exceeded")
	}
	if fn.BoundTarget != nil {
		return in.Call(fn.BoundTarget, fn.BoundThis, append(append([]Value(nil), fn.BoundArgs...), args...))
	}
	if fn.Native != nil {
		if in.Hook == nil {
			return fn.Native(in, this, args)
		}
		ctx := &HookCtx{Site: HookBuiltin, In: in, Name: fn.NativeName, This: this, Args: args}
		return in.applyHook(ctx, func() (Value, error) {
			return fn.Native(in, this, args)
		})
	}
	if fn.Fn == nil {
		return Undefined(), in.TypeErrorf("object is not callable")
	}
	fn.Invocations++
	if in.Hook != nil {
		ctx := in.hookCtx()
		*ctx = HookCtx{Site: HookFuncTier, In: in, Tier: fn.Invocations, Fn: fn}
		ov := in.Hook(ctx)
		in.releaseHookCtx(ctx)
		if ov != nil {
			if ov.CostExtra > 0 {
				if err := in.charge(ov.CostExtra); err != nil {
					return Undefined(), err
				}
			}
			if ov.Replace {
				return ov.Return, ov.Err
			}
		}
	}
	lit := fn.Fn.Lit
	strict := lit.Strict || in.Strict || fn.strictMarked
	compiled := fn.Fn.Compiled
	if in.DisableCompile {
		compiled = nil
	}
	var callEnv *Env
	pooled := false
	if sc := lit.Scope; sc != nil {
		// Resolved path: a pre-sized slot frame replaces the map, the
		// hoist walk is precomputed, and the arguments object is built
		// only when the body can observe it. Empty frames (slotless
		// arrows) reuse the closure environment, matching the resolver's
		// depth accounting.
		if sc.NumSlots == 0 {
			callEnv = fn.Fn.Env
		} else {
			// Compiled calls of closure-free bodies recycle their frame
			// (released after the body below); observable behaviour is
			// identical — release zeroes the slots.
			if compiled != nil && sc.Poolable {
				callEnv = in.AcquireScope(fn.Fn.Env, sc, true)
				pooled = true
			} else {
				callEnv = newFrame(fn.Fn.Env, sc, true)
			}
			for i, psl := range sc.ParamSlots {
				var pv Value
				if i < len(args) {
					pv = args[i]
				}
				callEnv.slots[psl] = binding{v: pv, mutable: true, live: true}
			}
			if sc.RestSlot >= 0 {
				rest := in.NewArray(nil)
				for i := len(lit.Params); i < len(args); i++ {
					rest.AppendElem(args[i])
				}
				callEnv.slots[sc.RestSlot] = binding{v: ObjValue(rest), mutable: true, live: true}
			}
		}
	} else {
		callEnv = NewEnv(fn.Fn.Env, true)
		for i, p := range lit.Params {
			if i < len(args) {
				callEnv.declareLexical(p, args[i], true)
			} else {
				callEnv.declareLexical(p, Undefined(), true)
			}
		}
		if lit.Rest != "" {
			rest := in.NewArray(nil)
			for i := len(lit.Params); i < len(args); i++ {
				rest.AppendElem(args[i])
			}
			callEnv.declareLexical(lit.Rest, ObjValue(rest), true)
		}
	}
	// this binding.
	var thisVal Value
	if lit.Arrow {
		thisVal = fn.BoundThis
	} else {
		thisVal = this
		if !strict {
			if thisVal.IsNullish() {
				thisVal = ObjValue(in.Global)
			} else if !thisVal.IsObject() {
				boxed, err := in.ToObject(thisVal)
				if err != nil {
					return Undefined(), err
				}
				thisVal = ObjValue(boxed)
			}
		}
		if sc := lit.Scope; sc != nil {
			if sc.ArgumentsSlot >= 0 {
				callEnv.slots[sc.ArgumentsSlot] = binding{v: in.makeArguments(args), mutable: true, live: true}
			}
			// The self-name binds only when the name is not already
			// visible up the closure chain — the dynamic path's
			// callEnv.Has gate, whose own-frame half (params, rest,
			// arguments) the resolver already ruled out statically.
			if sc.SelfSlot >= 0 && !fn.Fn.Env.Has(lit.Name) {
				callEnv.slots[sc.SelfSlot] = binding{v: ObjValue(fn), mutable: false, silent: true, live: true}
			}
		} else {
			callEnv.declareLexical("arguments", in.makeArguments(args), true)
			if lit.Name != "" && !callEnv.Has(lit.Name) {
				callEnv.declareFuncSelfName(lit.Name, ObjValue(fn))
			}
		}
	}
	in.thisStack = append(in.thisStack, thisVal)

	if sc := lit.Scope; sc != nil && sc.NumSlots > 0 {
		// Precomputed hoisting: var slots come live as undefined, then the
		// hoisted function declarations are instantiated in source order
		// (value writes only — flag state mirrors declareVar's).
		for _, vs := range sc.VarSlots {
			b := &callEnv.slots[vs]
			if !b.live {
				*b = binding{v: Undefined(), mutable: true, live: true}
			}
		}
		for i, hf := range sc.HoistFuncs {
			fobj := in.MakeFunction(hf, callEnv, strict)
			callEnv.slots[sc.HoistSlots[i]].v = ObjValue(fobj)
		}
	}

	// Body dispatch. All exits flow through the explicit this-stack pop
	// below (no defer on the hot path).
	var rv Value
	var rerr error
	switch {
	case compiled != nil:
		rv, rerr = compiled(in, callEnv, strict)
	case lit.ExprBody != nil:
		rv, rerr = in.evalExpr(lit.ExprBody, callEnv, strict)
	default:
		in.coverFunc(lit.ID())
		if lit.Scope == nil {
			in.hoist(lit.Body.Body, callEnv, false, strict)
		}
		c, err := in.execStmts(lit.Body.Body, callEnv, strict)
		if err != nil {
			rerr = err
		} else if c.kind == ctrlReturn {
			rv = c.val
		}
	}
	in.thisStack = in.thisStack[:len(in.thisStack)-1]
	if pooled {
		in.ReleaseScope(callEnv)
	}
	return rv, rerr
}

// makeArguments builds the (non-strict-spec, unmapped) arguments object.
func (in *Interp) makeArguments(args []Value) Value {
	argsObj := in.NewObject(in.Protos["Object"])
	argsObj.Class = "Arguments"
	for i, a := range args {
		argsObj.SetSlot(jsnum.Format(float64(i)), a, DefaultAttr)
	}
	argsObj.SetSlot("length", Number(float64(len(args))), Writable|Configurable)
	return ObjValue(argsObj)
}

func (in *Interp) evalNew(x *ast.NewExpr, env *Env, strict bool) (Value, error) {
	fnVal, err := in.evalExpr(x.Callee, env, strict)
	if err != nil {
		return Undefined(), err
	}
	args, err := in.evalArgs(x.Args, env, strict)
	if err != nil {
		return Undefined(), err
	}
	if !fnVal.IsObject() || !fnVal.Obj().IsCallable() {
		return Undefined(), in.TypeErrorf("%s is not a constructor", describeCallee(x.Callee))
	}
	return in.Construct(fnVal.Obj(), args)
}

// Construct implements the new operator.
func (in *Interp) Construct(fn *Object, args []Value) (Value, error) {
	if fn.BoundTarget != nil {
		return in.Construct(fn.BoundTarget, append(append([]Value(nil), fn.BoundArgs...), args...))
	}
	if fn.Construct != nil {
		if in.Hook == nil {
			return fn.Construct(in, Undefined(), args)
		}
		ctx := &HookCtx{Site: HookBuiltin, In: in, Name: "new " + fn.NativeName, Args: args}
		return in.applyHook(ctx, func() (Value, error) {
			return fn.Construct(in, Undefined(), args)
		})
	}
	if fn.Native != nil {
		if in.Hook == nil {
			return fn.Native(in, Undefined(), args)
		}
		ctx := &HookCtx{Site: HookBuiltin, In: in, Name: "new " + fn.NativeName, Args: args}
		return in.applyHook(ctx, func() (Value, error) {
			return fn.Native(in, Undefined(), args)
		})
	}
	if fn.Fn == nil || fn.Fn.Lit.Arrow {
		return Undefined(), in.TypeErrorf("not a constructor")
	}
	protoV, err := in.GetProp(ObjValue(fn), "prototype")
	if err != nil {
		return Undefined(), err
	}
	proto := in.Protos["Object"]
	if protoV.IsObject() {
		proto = protoV.Obj()
	}
	obj := in.NewObject(proto)
	res, err := in.Call(fn, ObjValue(obj), args)
	if err != nil {
		return Undefined(), err
	}
	if res.IsObject() {
		return res, nil
	}
	return ObjValue(obj), nil
}

// ---------- property access ----------

// GetProp reads property key from any value (boxing primitives virtually).
func (in *Interp) GetProp(v Value, key string) (Value, error) {
	return in.GetPropKey(v, key)
}

// evalComputedParts evaluates a computed member expression's object and
// key. Object keys are converted to strings immediately — the conversion
// can run user code (toString), so it must happen at the key's evaluation
// position, before anything that follows (e.g. an assignment's right-hand
// side). Primitive keys stay unconverted for the by-value fast paths;
// their conversion is pure and deferrable.
func (in *Interp) evalComputedParts(x *ast.MemberExpr, env *Env, strict bool) (Value, Value, error) {
	obj, err := in.evalExpr(x.Obj, env, strict)
	if err != nil {
		return Undefined(), Undefined(), err
	}
	kv, err := in.evalExpr(x.Prop, env, strict)
	if err != nil {
		return Undefined(), Undefined(), err
	}
	if kv.IsObject() {
		key, err := in.ToPropertyKey(kv)
		if err != nil {
			return Undefined(), Undefined(), err
		}
		kv = String(key)
	}
	return obj, kv, nil
}

// denseIndex reports whether f is a canonical index into a dense array of
// length n.
func denseIndex(f float64, n int) (int, bool) {
	i := int(f)
	if float64(i) != f || i < 0 || i >= n {
		return 0, false
	}
	return i, true
}

// getPropByValue reads obj[key] with the key still a language value: dense
// integer reads on arrays skip the number→string conversion and the
// property-descriptor boxing entirely. Every other shape converts and takes
// the generic path, so behaviour (including conversion side effects, which
// are pure for non-object keys) is unchanged.
func (in *Interp) getPropByValue(obj, key Value) (Value, error) {
	if key.Kind() == KindNumber && obj.IsObject() {
		o := obj.Obj()
		if o.IsArray() {
			if idx, ok := denseIndex(key.Num(), len(o.elems)); ok {
				if err := in.charge(1); err != nil {
					return Undefined(), err
				}
				return o.elems[idx], nil
			}
		}
	}
	k, err := in.ToPropertyKey(key)
	if err != nil {
		return Undefined(), err
	}
	return in.GetPropKey(obj, k)
}

// setPropByValue writes obj[key] = v with the key still a language value.
// The fast paths cover dense array elements — in-bounds overwrites and the
// append position — when no defect hook is installed (hooks observe
// property sets and array growth) and the array is not frozen; they
// perform exactly the write the generic path would. The append position
// additionally requires an index-free prototype chain (chainIndexFree), so
// a numeric accessor installed anywhere above the array still intercepts
// exactly as the generic chain walk would have.
func (in *Interp) setPropByValue(target, key, v Value, strict bool) error {
	if key.Kind() == KindNumber && target.IsObject() && in.Hook == nil {
		o := target.Obj()
		if o.IsArray() && !o.arrayFrozen() {
			if idx, ok := denseIndex(key.Num(), len(o.elems)); ok {
				if err := in.charge(1); err != nil {
					return err
				}
				o.elems[idx] = v
				return nil
			}
			if f := key.Num(); f == float64(len(o.elems)) && f < 4294967295 && chainIndexFree(o) {
				// The generic path would stringify the index, walk the
				// chain (provably empty for index keys here) and land in
				// arraySet's append case; charge matches SetProp's.
				if err := in.charge(1); err != nil {
					return err
				}
				o.arraySet(uint32(f), v)
				return nil
			}
		}
	}
	k, err := in.ToPropertyKey(key)
	if err != nil {
		return err
	}
	return in.SetProp(target, k, v, strict)
}

// chainIndexFree reports that no object on the prototype chain (receiver
// included) carries index-keyed own properties or virtual index slots, so
// a prototype-chain walk for an index key is provably a miss.
func chainIndexFree(o *Object) bool {
	for cur := o; cur != nil; cur = cur.Proto {
		if cur.indexProps || cur.ElemKind != ElemNone || cur.HasPrim {
			return false
		}
	}
	return true
}

// GetPropKey reads a property with a precomputed key.
func (in *Interp) GetPropKey(v Value, key string) (Value, error) {
	if err := in.charge(1); err != nil {
		return Undefined(), err
	}
	switch v.Kind() {
	case KindUndefined, KindNull:
		return Undefined(), in.TypeErrorf("Cannot read properties of %s (reading '%s')", v.Kind(), key)
	case KindObject:
		val, ok, err := in.getPropOnObject(v.Obj(), key)
		if err != nil {
			return Undefined(), err
		}
		if ok {
			return val, nil
		}
		return Undefined(), nil
	case KindString:
		if key == "length" {
			return Number(float64(in.RuneLen(v.Str()))), nil
		}
		if idx, ok := arrayIndex(key); ok {
			s := v.Str()
			if _, ascii := in.stringMetrics(s); ascii {
				if int(idx) < len(s) {
					return String(s[idx : idx+1]), nil
				}
				return Undefined(), nil
			}
			if r, ok := runeAt(s, int(idx)); ok {
				return String(r), nil
			}
			return Undefined(), nil
		}
		return in.protoLookup(v, in.Protos["String"], key)
	case KindNumber:
		return in.protoLookup(v, in.Protos["Number"], key)
	default:
		return in.protoLookup(v, in.Protos["Boolean"], key)
	}
}

func (in *Interp) protoLookup(this Value, proto *Object, key string) (Value, error) {
	if proto == nil {
		return Undefined(), nil
	}
	v, ok, err := in.getPropOnObjectWithThis(proto, key, this)
	if err != nil {
		return Undefined(), err
	}
	if ok {
		return v, nil
	}
	return Undefined(), nil
}

func (in *Interp) getPropOnObject(o *Object, key string) (Value, bool, error) {
	return in.getPropOnObjectWithThis(o, key, ObjValue(o))
}

func (in *Interp) getPropOnObjectWithThis(o *Object, key string, this Value) (Value, bool, error) {
	for cur := o; cur != nil; cur = cur.Proto {
		// Array virtual slots are data properties; answer them without
		// materialising a descriptor (getOwn allocates one per hit, which
		// used to dominate element-read cost).
		if cur.IsArray() {
			if key == "length" {
				return Number(float64(cur.arrayLen)), true, nil
			}
			if idx, ok := arrayIndex(key); ok && int(idx) < len(cur.elems) {
				return cur.elems[idx], true, nil
			}
		}
		// Shape-mode objects answer (or definitively miss) named keys from
		// slot storage without boxing a descriptor; shape properties are
		// always data properties, so no accessor dispatch is needed.
		if cur.shape != nil && cur.shapeFastKey(key) {
			if sp := cur.shape.find(key); sp != nil {
				v := cur.slots[sp.slot]
				if v.kind == kindPending {
					cur.resolveLazy(key)
					if v = cur.slots[sp.slot]; v.kind == kindPending {
						continue
					}
				}
				return v, true, nil
			}
			continue
		}
		p, ok := cur.getOwn(key)
		if !ok {
			continue
		}
		if p.Accessor {
			if p.Get == nil {
				return Undefined(), true, nil
			}
			v, err := in.Call(p.Get, this, nil)
			return v, true, err
		}
		return p.Value, true, nil
	}
	return Undefined(), false, nil
}

// SetProp stores a property on a value per the language assignment rules
// (prototype setters, writability, array index fast path, defect hooks).
func (in *Interp) SetProp(target Value, key string, v Value, strict bool) error {
	if err := in.charge(1); err != nil {
		return err
	}
	if target.IsNullish() {
		return in.TypeErrorf("Cannot set properties of %s (setting '%s')", target.Kind(), key)
	}
	if !target.IsObject() {
		// Assignment to a property of a primitive: no-op (sloppy) or
		// TypeError (strict).
		if strict {
			return in.TypeErrorf("Cannot create property '%s' on %s", key, TypeOf(target))
		}
		return nil
	}
	o := target.Obj()
	if in.Hook != nil {
		ctx := in.hookCtx()
		*ctx = HookCtx{Site: HookPropSet, In: in, Obj: o, Key: String(key), Val: v}
		ov := in.Hook(ctx)
		in.releaseHookCtx(ctx)
		if ov != nil {
			if ov.CostExtra > 0 {
				if err := in.charge(ov.CostExtra); err != nil {
					return err
				}
			}
			if ov.Replace {
				return ov.Err
			}
			if ov.Handled {
				return nil
			}
		}
	}
	// Accessor on the prototype chain?
	idx, isIdx := arrayIndex(key)
	for cur := o; cur != nil; cur = cur.Proto {
		// Array virtual slots are writable data properties wherever they
		// sit in the chain; stop the walk without boxing a descriptor.
		if cur.IsArray() {
			if key == "length" {
				break
			}
			if isIdx && int(idx) < len(cur.elems) {
				break
			}
		}
		// Index keys cannot resolve on objects that never gained an
		// index-keyed own property (and carry no virtual index slots) —
		// the common growing-array write walks past Array.prototype and
		// Object.prototype without probing their maps.
		if isIdx && !cur.indexProps && cur.ElemKind == ElemNone && !cur.HasPrim {
			continue
		}
		// Shape-mode link: named shape properties are data properties, so
		// the walk only needs existence and (on the receiver) writability —
		// no descriptor box, no map probe.
		if cur.shape != nil && cur.shapeFastKey(key) {
			sp := cur.shape.find(key)
			if sp == nil {
				continue
			}
			if cur == o && sp.attr&Writable == 0 {
				if strict {
					return in.TypeErrorf("Cannot assign to read only property '%s'", key)
				}
				return nil
			}
			break
		}
		p, ok := cur.getOwn(key)
		if !ok {
			continue
		}
		if p.Accessor {
			if p.Set == nil {
				if strict {
					return in.TypeErrorf("Cannot set property %s which has only a getter", key)
				}
				return nil
			}
			_, err := in.Call(p.Set, target, []Value{v})
			return err
		}
		if cur == o {
			if p.Attr&Writable == 0 {
				if strict {
					return in.TypeErrorf("Cannot assign to read only property '%s'", key)
				}
				return nil
			}
		}
		break
	}
	// Frozen arrays and typed arrays reject element writes (the hidden
	// __frozen__ marker is maintained by Object.freeze).
	if isIdx && (o.IsArray() || o.ElemKind != ElemNone) && o.arrayFrozen() {
		if strict {
			return in.TypeErrorf("Cannot assign to read only property '%s' of object", key)
		}
		return nil
	}
	// Array fast path with the growth hook (performance defects).
	if o.IsArray() {
		if isIdx {
			if in.Hook != nil {
				ctx := in.hookCtx()
				*ctx = HookCtx{Site: HookArrayGrow, In: in, Obj: o, Index: idx, Val: v}
				ov := in.Hook(ctx)
				in.releaseHookCtx(ctx)
				if ov != nil && ov.CostExtra > 0 {
					if err := in.charge(ov.CostExtra); err != nil {
						return err
					}
				}
			}
			o.arraySet(idx, v)
			return nil
		}
		if key == "length" {
			n, err := in.ToNumber(v)
			if err != nil {
				return err
			}
			u := jsnum.ToUint32(n)
			if float64(u) != n {
				return in.RangeErrorf("Invalid array length")
			}
			o.truncate(u)
			return nil
		}
	}
	// Typed arrays.
	if o.ElemKind != ElemNone && o.Class != "DataView" {
		if isIdx {
			if int(idx) < o.ArrayLen {
				n, err := in.ToNumber(v)
				if err != nil {
					return err
				}
				o.TypedSet(int(idx), n)
			}
			return nil
		}
	}
	if !o.Extensible && !o.HasOwn(key) {
		if strict {
			return in.TypeErrorf("Cannot add property %s, object is not extensible", key)
		}
		return nil
	}
	o.SetSlot(key, v, DefaultAttr)
	return nil
}

// NewArray allocates an Array object with the given dense elements.
func (in *Interp) NewArray(elems []Value) *Object {
	o := NewObject(in.Protos["Array"])
	o.Class = "Array"
	o.elems = elems
	o.arrayLen = uint32(len(elems))
	return o
}

// NewRegExp compiles a regex literal into a RegExp object, passing through
// the regex-engine defect hook.
func (in *Interp) NewRegExp(pattern, flags string) (Value, error) {
	re, err := regex.Compile(pattern, flags)
	if err != nil {
		return Undefined(), in.SyntaxErrorf("Invalid regular expression: /%s/: %v", pattern, err)
	}
	o := NewObject(in.Protos["RegExp"])
	o.Class = "RegExp"
	o.Regex = re
	o.SetSlot("lastIndex", Number(0), Writable)
	o.SetSlot("source", String(pattern), 0)
	o.SetSlot("flags", String(flags), 0)
	o.SetSlot("global", Bool(re.Global), 0)
	o.SetSlot("ignoreCase", Bool(re.IgnoreCase), 0)
	o.SetSlot("multiline", Bool(re.Multiline), 0)
	o.SetSlot("sticky", Bool(re.Sticky), 0)
	return ObjValue(o), nil
}
