// Package difftest implements the differential-testing methodology of the
// paper's Section 3.4 and Figure 5: execute a test case on many testbeds,
// check parse consistency, apply the 2× timeout rule over deterministic
// fuel, and majority-vote on execution behaviour to isolate deviant
// engines.
package difftest

import (
	"sort"

	"comfort/internal/engines"
	"comfort/internal/js/ast"
)

// Verdict classifies a whole test case (the leaf states of Figure 5).
type Verdict int

// Test-case verdicts.
const (
	// VerdictPass: all testbeds agree on a successful execution.
	VerdictPass Verdict = iota
	// VerdictInvalid: every testbed rejects the program (ignored).
	VerdictInvalid
	// VerdictParseInconsistent: engines disagree about parseability.
	VerdictParseInconsistent
	// VerdictWrongOutput: executions disagree on result/exception.
	VerdictWrongOutput
	// VerdictCrash: at least one engine crashed.
	VerdictCrash
	// VerdictTimeout: at least one engine violated the 2× fuel rule.
	VerdictTimeout
	// VerdictAllTimeout: everything timed out (likely an infinite loop in
	// the test program; ignored per the paper's ten-minute rule).
	VerdictAllTimeout
	// VerdictInconclusive: no majority behaviour exists.
	VerdictInconclusive
)

func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictInvalid:
		return "invalid"
	case VerdictParseInconsistent:
		return "parse-inconsistent"
	case VerdictWrongOutput:
		return "wrong-output"
	case VerdictCrash:
		return "crash"
	case VerdictTimeout:
		return "timeout"
	case VerdictAllTimeout:
		return "all-timeout"
	default:
		return "inconclusive"
	}
}

// verdictNames maps each verdict's String rendering back to the value —
// the stable encoding campaign checkpoints persist verdict counters under.
var verdictNames = map[string]Verdict{}

func init() {
	for v := VerdictPass; v <= VerdictInconclusive; v++ {
		verdictNames[v.String()] = v
	}
}

// VerdictByName resolves a Verdict from its String rendering (checkpoint
// decoding). The second return is false for unknown names.
func VerdictByName(name string) (Verdict, bool) {
	v, ok := verdictNames[name]
	return v, ok
}

// IsBuggy reports whether the verdict indicates anomalous engine behaviour
// worth reporting.
func (v Verdict) IsBuggy() bool {
	switch v {
	case VerdictParseInconsistent, VerdictWrongOutput, VerdictCrash, VerdictTimeout:
		return true
	}
	return false
}

// Deviation is one testbed whose behaviour deviates from the majority.
type Deviation struct {
	Testbed engines.Testbed
	Result  engines.ExecResult
}

// ExecEntry pairs one testbed with its observed behaviour on a test case —
// the raw material of Figure-5 classification. Schedulers produce entries
// (in any order); Classify consumes them.
type ExecEntry struct {
	Testbed engines.Testbed
	Result  engines.ExecResult
}

// CaseResult is the outcome of differentially testing one program.
type CaseResult struct {
	Verdict     Verdict
	Deviations  []Deviation
	MajorityKey string
	Results     map[string]engines.ExecResult // by testbed ID
	// EarlyError marks a VerdictInvalid case whose rejection came from the
	// static analyzer's early-error gate on every testbed (rather than the
	// parser): the campaign accounts these separately — the whole case was
	// classified without a single interpreter run.
	EarlyError bool
}

// Options parameterise a run.
type Options struct {
	Fuel int64
	Seed int64
}

// DefaultFuel is the campaign-scale step budget per testbed execution,
// shared by difftest, the exec scheduler and campaign defaulting.
const DefaultFuel = 200000

// RunCell executes one (case, testbed) cell: pre-parse interceptors, a
// caller-supplied (possibly caching) parse, then interpretation. Both the
// exec scheduler and Execute funnel through here so the cell semantics
// cannot drift between paths.
func RunCell(p *engines.PreparedTestbed, src string,
	parse func(*engines.PreparedTestbed, string) (*ast.Program, error),
	opts engines.RunOptions) engines.ExecResult {
	if msg := p.PreParseError(src); msg != "" {
		return engines.PreParseResult(msg)
	}
	prog, err := parse(p, src)
	return p.ExecParsed(prog, err, opts)
}

// Run executes src on all testbeds and classifies the outcome per Figure 5.
func Run(src string, testbeds []engines.Testbed, opts Options) CaseResult {
	return Classify(Execute(src, testbeds, opts))
}

// Execute runs src on every testbed (via its memoised prepared form) and
// returns the per-testbed entries in testbed order. The parse is shared
// between testbeds whose resolved parser options coincide, and the whole
// execution is shared between testbeds in the same behaviour equivalence
// class (see engines.PreparedTestbed.BehaviorKey).
func Execute(src string, testbeds []engines.Testbed, opts Options) []ExecEntry {
	if opts.Fuel == 0 {
		opts.Fuel = DefaultFuel
	}
	runOpts := engines.RunOptions{Fuel: opts.Fuel, Seed: opts.Seed}
	type parsed struct {
		prog *ast.Program
		err  error
	}
	parseCache := map[uint64]parsed{}
	parse := func(p *engines.PreparedTestbed, src string) (*ast.Program, error) {
		pr, ok := parseCache[p.ParseFingerprint()]
		if !ok {
			pr.prog, pr.err = p.Parse(src)
			parseCache[p.ParseFingerprint()] = pr
		}
		return pr.prog, pr.err
	}
	resultCache := map[string]engines.ExecResult{}
	entries := make([]ExecEntry, 0, len(testbeds))
	for _, tb := range testbeds {
		p := tb.Prepare()
		r, ok := resultCache[p.BehaviorKey()]
		if !ok {
			r = RunCell(p, src, parse, runOpts)
			resultCache[p.BehaviorKey()] = r
		}
		entries = append(entries, ExecEntry{Testbed: tb, Result: r})
	}
	return entries
}

// Classify applies the Figure-5 decision procedure to a set of executions.
// It is pure — no testbed runs — so it is unit-testable with synthetic
// entries and reusable by the exec scheduler's result sink. Normal-mode and
// strict-mode testbeds vote in separate pools, because the two modes have
// legitimately different conforming behaviour; the pools' verdicts are then
// merged.
func Classify(entries []ExecEntry) CaseResult {
	var normal, strict []ExecEntry
	for _, e := range entries {
		if e.Testbed.Strict {
			strict = append(strict, e)
		} else {
			normal = append(normal, e)
		}
	}
	if len(normal) == 0 || len(strict) == 0 {
		return classifyPool(entries)
	}
	a := classifyPool(normal)
	b := classifyPool(strict)
	merged := CaseResult{Results: a.Results, Verdict: a.Verdict, MajorityKey: a.MajorityKey,
		EarlyError: a.EarlyError && b.EarlyError}
	for k, v := range b.Results {
		merged.Results[k] = v
	}
	if verdictRank(b.Verdict) > verdictRank(a.Verdict) {
		merged.Verdict = b.Verdict
		merged.MajorityKey = b.MajorityKey
	}
	if a.Verdict.IsBuggy() {
		merged.Deviations = append(merged.Deviations, a.Deviations...)
	}
	if b.Verdict.IsBuggy() {
		merged.Deviations = append(merged.Deviations, b.Deviations...)
	}
	return merged
}

// verdictRank orders verdicts by how actionable they are for merging.
func verdictRank(v Verdict) int {
	switch v {
	case VerdictCrash:
		return 7
	case VerdictTimeout:
		return 6
	case VerdictParseInconsistent:
		return 5
	case VerdictWrongOutput:
		return 4
	case VerdictInconclusive:
		return 3
	case VerdictPass:
		return 2
	case VerdictAllTimeout:
		return 1
	default: // VerdictInvalid
		return 0
	}
}

// classifyPool applies the Figure-5 classification to one pool of entries.
func classifyPool(entries []ExecEntry) CaseResult {
	res := CaseResult{Results: map[string]engines.ExecResult{}}
	for _, e := range entries {
		res.Results[e.Testbed.ID()] = e.Result
	}

	// Step 1: parse consistency.
	parseErrs := 0
	earlyErrs := 0
	for _, e := range entries {
		if e.Result.Outcome == engines.OutcomeParseError {
			parseErrs++
			if e.Result.EarlyError {
				earlyErrs++
			}
		}
	}
	switch {
	case parseErrs == len(entries):
		res.Verdict = VerdictInvalid
		res.EarlyError = earlyErrs == len(entries)
		return res
	case parseErrs > 0:
		res.Verdict = VerdictParseInconsistent
		// The minority side is deviant: engines disagreeing with the most
		// common parse disposition.
		parseOK := len(entries) - parseErrs
		deviantIsErr := parseErrs <= parseOK
		for _, e := range entries {
			if (e.Result.Outcome == engines.OutcomeParseError) == deviantIsErr {
				res.Deviations = append(res.Deviations, Deviation{e.Testbed, e.Result})
			}
		}
		return res
	}

	// Step 2: crashes are of immediate interest.
	for _, e := range entries {
		if e.Result.Outcome == engines.OutcomeCrash {
			res.Deviations = append(res.Deviations, Deviation{e.Testbed, e.Result})
		}
	}
	if len(res.Deviations) > 0 && len(res.Deviations) < len(entries) {
		res.Verdict = VerdictCrash
		return res
	}
	res.Deviations = nil

	// Step 3: the 2× timeout rule over fuel. An engine that exhausted its
	// budget while others finished far below it is deviant. A wall-clock
	// watchdog timeout is deviant unconditionally: the engine hung in real
	// time while the others finished, so its (possibly tiny) fuel reading
	// says nothing — the 2× fuel comparison only gates fuel timeouts.
	var maxFinished int64
	finished := 0
	for _, e := range entries {
		if e.Result.Outcome != engines.OutcomeTimeout {
			finished++
			if e.Result.FuelUsed > maxFinished {
				maxFinished = e.Result.FuelUsed
			}
		}
	}
	if finished == 0 {
		res.Verdict = VerdictAllTimeout
		return res
	}
	for _, e := range entries {
		if e.Result.Outcome == engines.OutcomeTimeout &&
			(e.Result.WallClock || e.Result.FuelUsed > 2*maxFinished) {
			res.Deviations = append(res.Deviations, Deviation{e.Testbed, e.Result})
		}
	}
	if len(res.Deviations) > 0 {
		res.Verdict = VerdictTimeout
		return res
	}

	// Step 4: majority voting over behaviour keys.
	groups := map[string][]ExecEntry{}
	for _, e := range entries {
		groups[e.Result.Key()] = append(groups[e.Result.Key()], e)
	}
	if len(groups) == 1 {
		res.Verdict = VerdictPass
		res.MajorityKey = entries[0].Result.Key()
		return res
	}
	var keys []string
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(groups[keys[i]]) != len(groups[keys[j]]) {
			return len(groups[keys[i]]) > len(groups[keys[j]])
		}
		return keys[i] < keys[j]
	})
	majority := keys[0]
	if len(keys) > 1 && len(groups[keys[0]]) == len(groups[keys[1]]) && len(groups) == 2 &&
		len(groups[keys[0]])*2 == len(entries) {
		// Perfect split: no majority to vote with.
		res.Verdict = VerdictInconclusive
		return res
	}
	res.MajorityKey = majority
	for _, k := range keys[1:] {
		for _, e := range groups[k] {
			res.Deviations = append(res.Deviations, Deviation{e.Testbed, e.Result})
		}
	}
	res.Verdict = VerdictWrongOutput
	return res
}
