// Package analyze is the static semantic analyzer: one pass per parsed
// program produces an analyze.Report with three products the pipeline
// consumes ahead of differential execution.
//
//  1. Early errors — static-semantics violations the parser accepts
//     (duplicate lexical bindings, unknown break/continue labels,
//     assignment to const, ...). The engines layer turns these into a
//     pre-execution SyntaxError that is a pure function of the source
//     text, so the scheduler can classify such a case from the reference
//     testbed alone instead of fanning out to every behaviour class.
//  2. Divergence-risk flags — constructs whose behaviour is
//     implementation-defined or nondeterministic in real engines
//     (Math.random, Date.now, for-in enumeration order, ...). The
//     campaign sink uses them to tag findings as suppressible false
//     positives, the paper's filtering step.
//  3. Feature fingerprints — a compact bitset of the language features a
//     program exercises, the feature-sensitive coverage key surfaced
//     through campaign.Progress/Result and finding reports.
//
// Like the resolve and compile passes, the report is computed once per
// parse and attached to the Program (ast.Program.Analysis) before the
// tree is shared across goroutines; analysis consumes nothing but the
// AST itself, so the exec layer's parse-fingerprint cache key keeps it
// sound. The analyzer also hosts the static quality warnings that
// internal/js/lint exposes (lint.Check is a thin wrapper now).
package analyze

import (
	"fmt"

	"comfort/internal/js/ast"
	"comfort/internal/js/token"
)

// EarlyError is one static-semantics violation. Kind is a stable
// machine-readable rule name; Msg and Pos render like parser errors.
type EarlyError struct {
	Kind string
	Msg  string
	Pos  token.Pos
}

// Render formats the violation exactly like a parser SyntaxError, so the
// difftest classifier sees one uniform parse-rejection shape.
func (e EarlyError) Render() string {
	return fmt.Sprintf("SyntaxError: %s (at %s)", e.Msg, e.Pos)
}

// Report is the analyzer's per-program output.
type Report struct {
	// EarlyErrors lists static-semantics violations in source order; a
	// non-empty list makes the program invalid on every testbed.
	EarlyErrors []EarlyError
	// Flags marks divergence-risk (nondeterministic or
	// implementation-defined) constructs.
	Flags Flags
	// Features is the program's language-feature fingerprint.
	Features Features
	// Warnings are the static quality diagnostics (source order); see
	// internal/js/lint.
	Warnings []string
	// PrintSites holds the node IDs of print(...) call sites — the
	// assertion-site inventory a conformance-test exporter consumes.
	PrintSites []int
}

// FirstError returns the first early error in source order, or nil.
func (r *Report) FirstError() *EarlyError {
	if r == nil || len(r.EarlyErrors) == 0 {
		return nil
	}
	return &r.EarlyErrors[0]
}

// Invalid reports whether the program has any early error.
func (r *Report) Invalid() bool { return r != nil && len(r.EarlyErrors) > 0 }

// Analyze computes a fresh report for prog without attaching it. The
// DisableAnalyze ablation runs on this path — a second, uncached
// implementation of exactly the analysis the cached path serves.
func Analyze(prog *ast.Program) *Report {
	r := &Report{}
	scanProgram(prog, r) // features, flags, print sites (features.go)
	earlyErrors(prog, r) // static-semantics pass (early.go)
	warnings(prog, r)    // quality warnings (warnings.go)
	return r
}

// Program computes the report once and attaches it to the program,
// mirroring resolve.Program/compile.Program. Idempotent. Callers must
// attach before sharing the tree across goroutines (the parse paths in
// internal/engines do); concurrent readers then use Of.
func Program(prog *ast.Program) *Report {
	if rep, ok := prog.Analysis.(*Report); ok {
		return rep
	}
	rep := Analyze(prog)
	prog.Analysis = rep
	return rep
}

// Of returns the report attached to prog, or nil when the program was
// never analyzed. Never computes or attaches, so it is safe on shared
// trees.
func Of(prog *ast.Program) *Report {
	rep, _ := prog.Analysis.(*Report)
	return rep
}
