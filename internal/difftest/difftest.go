// Package difftest implements the differential-testing methodology of the
// paper's Section 3.4 and Figure 5: execute a test case on many testbeds,
// check parse consistency, apply the 2× timeout rule over deterministic
// fuel, and majority-vote on execution behaviour to isolate deviant
// engines.
package difftest

import (
	"sort"

	"comfort/internal/engines"
)

// Verdict classifies a whole test case (the leaf states of Figure 5).
type Verdict int

// Test-case verdicts.
const (
	// VerdictPass: all testbeds agree on a successful execution.
	VerdictPass Verdict = iota
	// VerdictInvalid: every testbed rejects the program (ignored).
	VerdictInvalid
	// VerdictParseInconsistent: engines disagree about parseability.
	VerdictParseInconsistent
	// VerdictWrongOutput: executions disagree on result/exception.
	VerdictWrongOutput
	// VerdictCrash: at least one engine crashed.
	VerdictCrash
	// VerdictTimeout: at least one engine violated the 2× fuel rule.
	VerdictTimeout
	// VerdictAllTimeout: everything timed out (likely an infinite loop in
	// the test program; ignored per the paper's ten-minute rule).
	VerdictAllTimeout
	// VerdictInconclusive: no majority behaviour exists.
	VerdictInconclusive
)

func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictInvalid:
		return "invalid"
	case VerdictParseInconsistent:
		return "parse-inconsistent"
	case VerdictWrongOutput:
		return "wrong-output"
	case VerdictCrash:
		return "crash"
	case VerdictTimeout:
		return "timeout"
	case VerdictAllTimeout:
		return "all-timeout"
	default:
		return "inconclusive"
	}
}

// IsBuggy reports whether the verdict indicates anomalous engine behaviour
// worth reporting.
func (v Verdict) IsBuggy() bool {
	switch v {
	case VerdictParseInconsistent, VerdictWrongOutput, VerdictCrash, VerdictTimeout:
		return true
	}
	return false
}

// Deviation is one testbed whose behaviour deviates from the majority.
type Deviation struct {
	Testbed engines.Testbed
	Result  engines.ExecResult
}

// CaseResult is the outcome of differentially testing one program.
type CaseResult struct {
	Verdict     Verdict
	Deviations  []Deviation
	MajorityKey string
	Results     map[string]engines.ExecResult // by testbed ID
}

// Options parameterise a run.
type Options struct {
	Fuel int64
	Seed int64
}

// Run executes src on all testbeds and classifies the outcome per Figure 5.
// Normal-mode and strict-mode testbeds vote in separate pools, because the
// two modes have legitimately different conforming behaviour; the pools'
// verdicts are then merged.
func Run(src string, testbeds []engines.Testbed, opts Options) CaseResult {
	if opts.Fuel == 0 {
		opts.Fuel = 200000
	}
	var normal, strict []engines.Testbed
	for _, tb := range testbeds {
		if tb.Strict {
			strict = append(strict, tb)
		} else {
			normal = append(normal, tb)
		}
	}
	if len(normal) == 0 || len(strict) == 0 {
		return runPool(src, testbeds, opts)
	}
	a := runPool(src, normal, opts)
	b := runPool(src, strict, opts)
	merged := CaseResult{Results: a.Results, Verdict: a.Verdict, MajorityKey: a.MajorityKey}
	for k, v := range b.Results {
		merged.Results[k] = v
	}
	if verdictRank(b.Verdict) > verdictRank(a.Verdict) {
		merged.Verdict = b.Verdict
		merged.MajorityKey = b.MajorityKey
	}
	if a.Verdict.IsBuggy() {
		merged.Deviations = append(merged.Deviations, a.Deviations...)
	}
	if b.Verdict.IsBuggy() {
		merged.Deviations = append(merged.Deviations, b.Deviations...)
	}
	return merged
}

// verdictRank orders verdicts by how actionable they are for merging.
func verdictRank(v Verdict) int {
	switch v {
	case VerdictCrash:
		return 7
	case VerdictTimeout:
		return 6
	case VerdictParseInconsistent:
		return 5
	case VerdictWrongOutput:
		return 4
	case VerdictInconclusive:
		return 3
	case VerdictPass:
		return 2
	case VerdictAllTimeout:
		return 1
	default: // VerdictInvalid
		return 0
	}
}

// runPool applies the Figure-5 classification to one testbed pool.
func runPool(src string, testbeds []engines.Testbed, opts Options) CaseResult {
	res := CaseResult{Results: map[string]engines.ExecResult{}}
	type entry struct {
		tb engines.Testbed
		r  engines.ExecResult
	}
	entries := make([]entry, 0, len(testbeds))
	for _, tb := range testbeds {
		r := tb.Run(src, engines.RunOptions{Fuel: opts.Fuel, Seed: opts.Seed})
		res.Results[tb.ID()] = r
		entries = append(entries, entry{tb, r})
	}

	// Step 1: parse consistency.
	parseErrs := 0
	for _, e := range entries {
		if e.r.Outcome == engines.OutcomeParseError {
			parseErrs++
		}
	}
	switch {
	case parseErrs == len(entries):
		res.Verdict = VerdictInvalid
		return res
	case parseErrs > 0:
		res.Verdict = VerdictParseInconsistent
		// The minority side is deviant: engines disagreeing with the most
		// common parse disposition.
		parseOK := len(entries) - parseErrs
		deviantIsErr := parseErrs <= parseOK
		for _, e := range entries {
			if (e.r.Outcome == engines.OutcomeParseError) == deviantIsErr {
				res.Deviations = append(res.Deviations, Deviation{e.tb, e.r})
			}
		}
		return res
	}

	// Step 2: crashes are of immediate interest.
	for _, e := range entries {
		if e.r.Outcome == engines.OutcomeCrash {
			res.Deviations = append(res.Deviations, Deviation{e.tb, e.r})
		}
	}
	if len(res.Deviations) > 0 && len(res.Deviations) < len(entries) {
		res.Verdict = VerdictCrash
		return res
	}
	res.Deviations = nil

	// Step 3: the 2× timeout rule over fuel. An engine that exhausted its
	// budget while others finished far below it is deviant.
	var maxFinished int64
	finished := 0
	for _, e := range entries {
		if e.r.Outcome != engines.OutcomeTimeout {
			finished++
			if e.r.FuelUsed > maxFinished {
				maxFinished = e.r.FuelUsed
			}
		}
	}
	if finished == 0 {
		res.Verdict = VerdictAllTimeout
		return res
	}
	for _, e := range entries {
		if e.r.Outcome == engines.OutcomeTimeout && e.r.FuelUsed > 2*maxFinished {
			res.Deviations = append(res.Deviations, Deviation{e.tb, e.r})
		}
	}
	if len(res.Deviations) > 0 {
		res.Verdict = VerdictTimeout
		return res
	}

	// Step 4: majority voting over behaviour keys.
	groups := map[string][]entry{}
	for _, e := range entries {
		groups[e.r.Key()] = append(groups[e.r.Key()], e)
	}
	if len(groups) == 1 {
		res.Verdict = VerdictPass
		res.MajorityKey = entries[0].r.Key()
		return res
	}
	var keys []string
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(groups[keys[i]]) != len(groups[keys[j]]) {
			return len(groups[keys[i]]) > len(groups[keys[j]])
		}
		return keys[i] < keys[j]
	})
	majority := keys[0]
	if len(keys) > 1 && len(groups[keys[0]]) == len(groups[keys[1]]) && len(groups) == 2 &&
		len(groups[keys[0]])*2 == len(entries) {
		// Perfect split: no majority to vote with.
		res.Verdict = VerdictInconclusive
		return res
	}
	res.MajorityKey = majority
	for _, k := range keys[1:] {
		for _, e := range groups[k] {
			res.Deviations = append(res.Deviations, Deviation{e.tb, e.r})
		}
	}
	res.Verdict = VerdictWrongOutput
	return res
}
