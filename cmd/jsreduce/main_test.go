package main

import (
	"strings"
	"testing"

	"comfort/internal/engines"
)

// witness returns a catalog defect whose own witness diverges on its
// attributed version's testbed — the exact scenario jsreduce serves.
func witnessDefect(t *testing.T) (*engines.Defect, engines.Version) {
	t.Helper()
	for _, d := range engines.Catalog() {
		v, ok := engines.FindVersion(d.Engine, d.AttrVersion)
		if !ok || d.WitnessStrict {
			continue
		}
		return d, v
	}
	t.Fatal("no usable catalog witness")
	return nil, engines.Version{}
}

// TestReduceSourceHonoursFlags is the regression test for the hardcoded
// Fuel/Seed: the fuel, seed and workers values all flow into the
// reduction, and the reduced output still diverges under those options.
func TestReduceSourceHonoursFlags(t *testing.T) {
	d, v := witnessDefect(t)
	const fuel, seed = 500000, 1
	padded := "var pad1 = 1;\nvar pad2 = [1, 2, 3];\n" + d.Witness + "\nprint(pad1);\n"
	out, err := reduceSource(d.Engine, v.Name, false, fuel, seed, 2, padded)
	if err != nil {
		t.Fatalf("reduceSource: %v", err)
	}
	if len(out) >= len(padded) {
		t.Errorf("no shrinkage: %d -> %d bytes", len(padded), len(out))
	}
	p := engines.Testbed{Version: v}.Prepare()
	ref := engines.ReferenceTestbed(false).Prepare()
	opts := engines.RunOptions{Fuel: fuel, Seed: seed}
	if p.Run(out, opts).Key() == ref.Run(out, opts).Key() {
		t.Errorf("reduced output no longer diverges:\n%s", out)
	}

	// Worker counts must not change the reduced bytes.
	serial, err := reduceSource(d.Engine, v.Name, false, fuel, seed, 1, padded)
	if err != nil {
		t.Fatalf("reduceSource workers=1: %v", err)
	}
	if serial != out {
		t.Errorf("workers=2 output differs from workers=1:\n%s\nvs\n%s", out, serial)
	}
}

// TestReduceSourceRejectsNonDiverging pins the error path.
func TestReduceSourceRejectsNonDiverging(t *testing.T) {
	_, v := witnessDefect(t)
	_, err := reduceSource(v.Engine, v.Name, false, 500000, 1, 4, "print(1);")
	if err == nil || !strings.Contains(err.Error(), "does not diverge") {
		t.Errorf("expected non-divergence error, got %v", err)
	}
}
