package testgen

import (
	"math/rand"
	"strings"
	"testing"

	"comfort/internal/js/lint"
	"comfort/internal/spec"
)

const substrProgram = `function foo(str, start, len) {
  var ret = str.substr(start, len);
  return ret;
}
var s = "Name: Albert";
var len = 6;
print(foo(s, 6, len));`

func TestFindMutationPoints(t *testing.T) {
	points, err := FindMutationPoints(substrProgram, spec.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points: %d want 2 (start, length)", len(points))
	}
	if points[0].API != "String.prototype.substr" {
		t.Errorf("API: %s", points[0].API)
	}
	// The len argument is an identifier declared by a var statement: the
	// data-flow association must find it.
	if points[1].DeclName != "len" {
		t.Errorf("data-flow association failed: %+v", points[1])
	}
}

func TestMutateProducesBoundaryVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	variants := Mutate(substrProgram, spec.Default(), rng, Options{MaxVariants: 40})
	if len(variants) < 10 {
		t.Fatalf("too few variants: %d", len(variants))
	}
	sawUndefined, sawDeclRewrite := false, false
	for _, v := range variants {
		if !lint.Valid(v.Source) {
			t.Errorf("invalid variant:\n%s", v.Source)
		}
		if strings.Contains(v.Source, "substr(6, undefined)") ||
			strings.Contains(v.Source, "var len = undefined") {
			sawUndefined = true
		}
		if strings.Contains(v.Source, "var len = NaN") ||
			strings.Contains(v.Source, "var len = Infinity") {
			sawDeclRewrite = true
		}
	}
	if !sawUndefined {
		t.Error("the undefined boundary probe (the Figure-2 trigger) was never generated")
	}
	if !sawDeclRewrite {
		t.Error("declaration-initialiser rewriting never happened")
	}
}

func TestMutateHandlesGlobalAPIs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	variants := Mutate(`print(parseInt("42", 10));`, spec.Default(), rng, Options{MaxVariants: 10})
	if len(variants) == 0 {
		t.Fatal("global APIs (parseInt) must be mutated too")
	}
}

func TestMutateNoAPINoVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if vs := Mutate(`var x = 1 + 2;`, spec.Default(), rng, Options{}); len(vs) != 0 {
		t.Errorf("no API calls, expected no variants, got %d", len(vs))
	}
	if vs := Mutate(`var broken = (;`, spec.Default(), rng, Options{}); len(vs) != 0 {
		t.Errorf("unparseable input, expected no variants, got %d", len(vs))
	}
}

func TestMutateRespectsCap(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vs := Mutate(substrProgram, spec.Default(), rng, Options{MaxVariants: 3})
	if len(vs) > 3 {
		t.Errorf("cap violated: %d", len(vs))
	}
}
