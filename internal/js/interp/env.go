package interp

import "comfort/internal/js/ast"

// Env is a lexical environment: a chain of binding frames. Function-level
// frames absorb var declarations from nested blocks (var hoisting).
//
// A frame comes in two shapes. Dynamic frames (the global environment and
// every scope of an unresolved program) store bindings in a map, exactly as
// the original evaluator did. Slot frames (scopes of a resolve-annotated
// program) store bindings inline in a pre-sized slice, indexed by the
// static (depth, slot) coordinates the resolver assigned; per-slot liveness
// reproduces the map's "a let binding exists only once its declaration has
// executed" semantics for the dynamic fallback lookups. A slot frame may
// grow a map overlay for the rare declarations the resolver left dynamic.
type Env struct {
	vars   map[string]*binding
	scope  *ast.ScopeInfo // non-nil for slot frames
	slots  []binding      // len == scope.NumSlots; never reallocated
	parent *Env
	isFunc bool // var-scope boundary
}

type binding struct {
	v       Value
	mutable bool
	// silent marks immutable bindings whose sloppy-mode assignment is a
	// silent no-op rather than a TypeError (function self-names).
	silent bool
	// live marks slot bindings whose declaration has executed; dynamic
	// scans skip dead slots (map frames express this by absence).
	live bool
}

// declareVarWrite applies var-declaration write semantics to a slot
// binding: a dead slot is (re)created mutable, a live binding keeps its
// value for undefined writes (and its flags always — var re-declaration
// never changes mutability).
func (b *binding) declareVarWrite(v Value) {
	if !b.live {
		*b = binding{v: v, mutable: true, live: true}
	} else if v.Kind() != KindUndefined {
		b.v = v
	}
}

// NewEnv creates a dynamic child environment.
func NewEnv(parent *Env, isFunc bool) *Env {
	return &Env{vars: map[string]*binding{}, parent: parent, isFunc: isFunc}
}

// newFrame creates a slot-backed child environment with scope's layout.
// The slot slice is pre-sized and must never be appended to: lookups hand
// out interior pointers.
func newFrame(parent *Env, scope *ast.ScopeInfo, isFunc bool) *Env {
	return &Env{scope: scope, slots: make([]binding, scope.NumSlots), parent: parent, isFunc: isFunc}
}

// scopeEnv returns the environment a resolved scope executes in: a fresh
// frame when the scope has slots, the enclosing environment when it is
// empty (the resolver's depth accounting relies on empty scopes not
// materialising), and a dynamic child for unresolved scopes.
//
// Exception: a slotless scope whose parent is the global environment still
// gets a (cheap, map-less) child. Var-declaration and assignment semantics
// distinguish executing *in* the global environment from executing in a
// block child of it — a direct top-level `var` lands on the global object
// while one inside a block lands in the global environment's map — so
// collapsing onto GlobalEnv would flip that branch. No slot reference ever
// walks through a top-level block (there is nothing above it to target),
// so the extra frame cannot skew RefSlot depths.
func (in *Interp) scopeEnv(parent *Env, scope *ast.ScopeInfo) *Env {
	if scope != nil {
		if scope.NumSlots == 0 {
			if parent == in.GlobalEnv {
				return &Env{parent: parent}
			}
			return parent
		}
		return newFrame(parent, scope, false)
	}
	return NewEnv(parent, false)
}

// at returns the binding at the static coordinate (depth materialised
// frames up, index slot).
func (e *Env) at(depth, slot uint16) *binding {
	for ; depth > 0; depth-- {
		e = e.parent
	}
	return &e.slots[slot]
}

// slotIndex scans a slot frame's layout for name.
func (e *Env) slotIndex(name string) (int, bool) {
	for i, n := range e.scope.Names {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// lookup finds the binding for name, walking outward. Slot frames are
// scanned by name honouring liveness; map frames (and slot-frame overlays)
// by key presence.
func (e *Env) lookup(name string) (*binding, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if cur.scope != nil {
			if i, ok := cur.slotIndex(name); ok && cur.slots[i].live {
				return &cur.slots[i], true
			}
		}
		if b, ok := cur.vars[name]; ok {
			return b, true
		}
	}
	return nil, false
}

// declareVar creates a var-scoped binding on the nearest function frame.
func (e *Env) declareVar(name string, v Value) {
	fn := e
	for fn.parent != nil && !fn.isFunc {
		fn = fn.parent
	}
	if fn.scope != nil {
		if i, ok := fn.slotIndex(name); ok {
			fn.slots[i].declareVarWrite(v)
			return
		}
	}
	if b, ok := fn.vars[name]; ok {
		if v.Kind() != KindUndefined {
			b.v = v
		}
		return
	}
	if fn.vars == nil {
		fn.vars = map[string]*binding{}
	}
	fn.vars[name] = &binding{v: v, mutable: true, live: true}
}

// declareLexical creates a block-scoped binding on this frame.
func (e *Env) declareLexical(name string, v Value, mutable bool) {
	if e.scope != nil {
		if i, ok := e.slotIndex(name); ok {
			e.slots[i] = binding{v: v, mutable: mutable, live: true}
			return
		}
	}
	if e.vars == nil {
		e.vars = map[string]*binding{}
	}
	e.vars[name] = &binding{v: v, mutable: mutable, live: true}
}

// declareFuncSelfName creates the immutable (but sloppy-silent) binding of a
// named function expression's own name inside its body.
func (e *Env) declareFuncSelfName(name string, v Value) {
	if e.vars == nil {
		e.vars = map[string]*binding{}
	}
	e.vars[name] = &binding{v: v, mutable: false, silent: true, live: true}
}

// Has reports whether name resolves in this environment chain.
func (e *Env) Has(name string) bool {
	_, ok := e.lookup(name)
	return ok
}
