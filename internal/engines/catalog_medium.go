package engines

import (
	"math"
	"strings"

	"comfort/internal/js/interp"
	"comfort/internal/js/jsnum"
	"comfort/internal/js/regex"
)

// chakraCore seeds the 7 ChakraCore defects (7/7/5/1).
func (b *catalogBuilder) chakraCore() {
	// Listing 7: eval accepts a for-statement without a loop body.
	b.add(&Defect{
		ID: "ch-001", Engine: "ChakraCore", AttrVersion: "v1.11.8",
		Component: ParserComp, APIType: "eval", API: "eval",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, Test262: true, New: true,
		Note: "Listing 7: eval fails to throw SyntaxError for a bodyless for-loop",
		Witness: `var foo = function(cmd) {
  eval(cmd);
  print("Run Here 1");
};
var str = "for(;false;)";
foo(str);`,
		Hook: lenientEvalHook("for("),
	})
	b.add(&Defect{
		ID: "ch-002", Engine: "ChakraCore", AttrVersion: "v1.11.8",
		Component: CodeGen, APIType: "String", API: "String.prototype.endsWith",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "endsWith ignores its endPosition argument",
		Witness: `print("abcdef".endsWith("abc", 3));`,
		Hook: onAPI("String.prototype.endsWith", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 1 && !ctx.Args[1].IsUndefined()
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			return interp.Bool(strings.HasSuffix(ctx.This.Str(), ctx.Args[0].Str()))
		})),
	})
	b.add(&Defect{
		ID: "ch-003", Engine: "ChakraCore", AttrVersion: "v1.11.12",
		Component: Implementation, APIType: "Object", API: "Object.keys",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "Object.keys on arrays includes the length property",
		Witness: `print(Object.keys([7, 8]));`,
		Hook: onAPI("Object.keys", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].IsObject() && ctx.Args[0].Obj().IsArray()
		}, mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
			if res.IsObject() && res.Obj().IsArray() {
				res.Obj().AppendElem(interp.String("length"))
			}
			return res
		})),
	})
	b.add(&Defect{
		ID: "ch-004", Engine: "ChakraCore", AttrVersion: "v1.11.13",
		Component: Implementation, APIType: "other", API: "Math.hypot",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: false,
		Note:    "Math.hypot() with no arguments returns NaN instead of +0",
		Witness: `print(Math.hypot());`,
		Hook:    onAPI("Math.hypot", noArgs(), ret(interp.Number(math.NaN()))),
	})
	b.add(&Defect{
		ID: "ch-005", Engine: "ChakraCore", AttrVersion: "v1.11.16",
		Component: Optimizer, APIType: "other", API: "functier",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note: "optimizing JIT tier returns NaN from hot functions (17th call)",
		Witness: `function hot(i) { return i * 2; }
var sum = 0;
for (var i = 0; i < 20; i++) { sum += hot(i); }
print(sum);`,
		Hook: onTier(17, func(ctx *interp.HookCtx) *interp.Override {
			return &interp.Override{Replace: true, Return: interp.Number(math.NaN())}
		}),
	})
	b.add(&Defect{
		ID: "ch-006", Engine: "ChakraCore", AttrVersion: "v1.11.16",
		Component: CodeGen, APIType: "String", API: "String.prototype.trimStart",
		Channel: ChannelGen, Verified: true, DevFixed: false, New: true,
		Note:    "trimStart also trims trailing whitespace",
		Witness: `print("[" + "  a  ".trimStart() + "]");`,
		Hook: onAPI("String.prototype.trimStart", nil, retFn(func(ctx *interp.HookCtx) interp.Value {
			return interp.String(strings.TrimSpace(ctx.This.Str()))
		})),
	})
	b.add(&Defect{
		ID: "ch-007", Engine: "ChakraCore", AttrVersion: "v1.11.16",
		Component: ParserComp, APIType: "other", API: "parser",
		Channel: ChannelSpecData, Verified: true, DevFixed: false, New: true,
		Note:     "parser rejects binary integer literals (0b...)",
		Witness:  `var x = 0b1010; print(x);`,
		PreParse: rejectSource("0b", "unexpected binary literal"),
	})
}

// jsc seeds the 12 JSC defects (12/11/11/3).
func (b *catalogBuilder) jsc() {
	// Listing 5: %TypedArray%.prototype.set rejects String sources.
	b.add(&Defect{
		ID: "jsc-001", Engine: "JSC", AttrVersion: "244445", FixedIn: "261782",
		Component: CodeGen, APIType: "TypedArray", API: "Uint8Array.prototype.set",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, Test262: true, New: false,
		Note: "Listing 5: TypedArray.set throws TypeError for String array-likes",
		Witness: `var foo = function() {
  var e = '123';
  A = new Uint8Array(5);
  A.set(e);
  print(A);
};
foo();`,
		Hook: onAPI("Uint8Array.prototype.set", argString(0),
			throwE("TypeError", "Argument 1 is not an object")),
	})
	b.add(&Defect{
		ID: "jsc-002", Engine: "JSC", AttrVersion: "246135",
		Component: CodeGen, APIType: "String", API: "String.prototype.padEnd",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "padEnd pads at the start (padStart semantics)",
		Witness: `print("7".padEnd(3, "0"));`,
		Hook: onAPI("String.prototype.padEnd", nil, retFn(func(ctx *interp.HookCtx) interp.Value {
			s := ctx.This.Str()
			n := jsnum.SafeInt(ctx.Args[0].Num())
			if n > 4096 {
				n = 4096
			}
			fill := " "
			if len(ctx.Args) > 1 && ctx.Args[1].Kind() == interp.KindString {
				fill = ctx.Args[1].Str()
			}
			for len(s) < n && fill != "" {
				s = fill + s
				if len(s) > n {
					s = s[len(s)-n:]
				}
			}
			return interp.String(s)
		})),
	})
	b.add(&Defect{
		ID: "jsc-003", Engine: "JSC", AttrVersion: "246135",
		Component: Implementation, APIType: "Number", API: "Number.prototype.toPrecision",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, Test262: true, New: true,
		Note:    "toPrecision(p) behaves like toFixed(p)",
		Witness: `print((123.456).toPrecision(4));`,
		Hook: onAPI("Number.prototype.toPrecision", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindNumber
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			return interp.String(toFixedHook(ctx.This.Num(), int(ctx.Args[0].Num())))
		})),
	})
	b.add(&Defect{
		ID: "jsc-004", Engine: "JSC", AttrVersion: "246135",
		Component: Implementation, APIType: "DataView", API: "DataView.prototype.getInt16",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: false,
		Note: "getInt16 ignores the littleEndian flag",
		Witness: `var b = new ArrayBuffer(2);
var dv = new DataView(b);
dv.setUint8(0, 1);
dv.setUint8(1, 2);
print(dv.getInt16(0, true));`,
		Hook: onAPI("DataView.prototype.getInt16", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 1 && interp.ToBoolean(ctx.Args[1])
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			o := ctx.This.Obj()
			off := int(ctx.Args[0].Num())
			d := o.Buf.Data[o.ByteOff+off:]
			return interp.Number(float64(int16(uint16(d[1]) | uint16(d[0])<<8)))
		})),
	})
	b.add(&Defect{
		ID: "jsc-005", Engine: "JSC", AttrVersion: "246135",
		Component: Implementation, APIType: "Object", API: "Object.entries",
		Channel: ChannelGen, Verified: true, DevFixed: true, Test262: true, New: true,
		Note:    "Object.entries returns keys instead of [key,value] pairs",
		Witness: `print(JSON.stringify(Object.entries({a: 1})));`,
		Hook: onAPI("Object.entries", nil, func(ctx *interp.HookCtx) *interp.Override {
			return &interp.Override{Post: func(res interp.Value, err error) (interp.Value, error) {
				if err != nil || !res.IsObject() || !res.Obj().IsArray() {
					return res, err
				}
				elems := res.Obj().ArrayElems()
				for i, e := range elems {
					if e.IsObject() && e.Obj().IsArray() && len(e.Obj().ArrayElems()) > 0 {
						elems[i] = e.Obj().ArrayElems()[0]
					}
				}
				return res, nil
			}}
		}),
	})
	b.add(&Defect{
		ID: "jsc-006", Engine: "JSC", AttrVersion: "246135",
		Component: CodeGen, APIType: "String", API: "String.prototype.split",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "split with limit 0 returns [\"\"] instead of []",
		Witness: `print("a,b".split(",", 0).length);`,
		Hook: onAPI("String.prototype.split", and(argString(0), argZero(1)),
			retFn(func(ctx *interp.HookCtx) interp.Value {
				return interp.ObjValue(ctx.In.NewArray([]interp.Value{interp.String("")}))
			})),
	})
	b.add(&Defect{
		ID: "jsc-007", Engine: "JSC", AttrVersion: "246135",
		Component: RegexEngine, APIType: "other", API: "RegExp.prototype.test",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: false,
		Note: "sticky (y) flag treated as global: matches beyond lastIndex",
		Witness: `var re = /b/y;
print(re.test("ab"));`,
		Hook: onRegex("RegExp.prototype.test", func(pattern, flags string) bool {
			return strings.Contains(flags, "y")
		}, func(ctx *interp.HookCtx) *interp.Override {
			// Re-run without stickiness and fake the resulting range.
			return fakeUnanchored(ctx, "")
		}),
	})
	b.add(&Defect{
		ID: "jsc-008", Engine: "JSC", AttrVersion: "246135",
		Component: StrictModeComp, APIType: "other", API: "propset",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		StrictOnly: true, WitnessStrict: true,
		Note: "strict mode: write to non-writable property is silently ignored",
		Witness: `"use strict";
var o = {};
Object.defineProperty(o, "x", {value: 1, writable: false});
o.x = 2;
print(o.x);`,
		Hook: onPropSet(func(ctx *interp.HookCtx) bool {
			if p, ok := ctx.Obj.GetOwnProperty(ctx.Key.Str()); ok {
				return !p.Accessor && p.Attr&interp.Writable == 0
			}
			return false
		}, func(ctx *interp.HookCtx) *interp.Override {
			return &interp.Override{Handled: true}
		}),
	})
	b.add(&Defect{
		ID: "jsc-009", Engine: "JSC", AttrVersion: "246135",
		Component: ParserComp, APIType: "other", API: "parser",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:     "parser rejects trailing commas in argument lists",
		Witness:  `print(Math.max(1, 2, ));`,
		PreParse: rejectSource(", )", "unexpected token ')'"),
	})
	b.add(&Defect{
		ID: "jsc-010", Engine: "JSC", AttrVersion: "251631",
		Component: Implementation, APIType: "TypedArray", API: "Uint16Array.prototype.set",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note: "set with negative offset silently wraps instead of throwing RangeError",
		Witness: `var a = new Uint16Array(4);
a.set([1], -1);
print(a);`,
		Hook: onAPI("Uint16Array.prototype.set", argNeg(1), noThrow(interp.Undefined())),
	})
	b.add(&Defect{
		ID: "jsc-011", Engine: "JSC", AttrVersion: "251631",
		Component: CodeGen, APIType: "String", API: "String.prototype.at",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "at(-1) returns undefined instead of the last element",
		Witness: `print("abc".at(-1));`,
		Hook:    onAPI("String.prototype.at", argNeg(0), ret(interp.Undefined())),
	})
	b.add(&Defect{
		ID: "jsc-012", Engine: "JSC", AttrVersion: "261782",
		Component: Implementation, APIType: "TypedArray", API: "Object.freeze",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note: "Object.freeze is a no-op on typed arrays",
		Witness: `var a = new Uint8Array(2);
Object.freeze(a);
print(Object.isFrozen(a));`,
		Hook: onAPI("Object.freeze", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].IsObject() &&
				ctx.Args[0].Obj().ElemKind != interp.ElemNone
		}, retFn(func(ctx *interp.HookCtx) interp.Value { return ctx.Args[0] })),
	})
}

// hermes seeds the 16 Hermes defects (16/16/15/4).
func (b *catalogBuilder) hermes() {
	// Listing 2: quadratic relocation when an array is filled right-to-left.
	b.add(&Defect{
		ID: "he-001", Engine: "Hermes", AttrVersion: "v0.1.1", FixedIn: "v0.3.0",
		Component: CodeGen, APIType: "Array", API: "arraygrow",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note: "Listing 2: reverse-order element insertion relocates the array each time",
		Witness: `var foo = function(size) {
  var array = new Array(size);
  while (size--) {
    array[size] = 0;
  }
};
var parameter = 30000;
foo(parameter);
print("done");`,
		Hook: hermesReverseFillHook(),
	})
	// Listing 13 (Montage case): function self-name binding is mutable.
	b.add(&Defect{
		ID: "he-002", Engine: "Hermes", AttrVersion: "v0.1.1",
		Component: CodeGen, APIType: "other", API: "funcname",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: false,
		Note: "Listing 13: named function expression self-name is writable",
		Witness: `(function v1() {
  v1 = 20;
  print(v1 !== 20);
  print(typeof v1);
}());`,
		Configure: func(cfg *interp.Config) { cfg.MutableFuncName = true },
	})
	b.add(&Defect{
		ID: "he-003", Engine: "Hermes", AttrVersion: "v0.1.1",
		Component: Implementation, APIType: "eval", API: "eval",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, Test262: true, New: true,
		Note:    "eval(\"\") returns null instead of undefined",
		Witness: `print(eval(""));`,
		Hook: onAPI("eval", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString && ctx.Args[0].Str() == ""
		}, ret(interp.Null())),
	})
	b.add(&Defect{
		ID: "he-004", Engine: "Hermes", AttrVersion: "v0.1.1",
		Component: RegexEngine, APIType: "other", API: "RegExp.prototype.test",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: false,
		Note:    "\\b word boundary fails next to digits",
		Witness: `print(/\b\d+\b/.test("abc 123"));`,
		Hook: onRegex("RegExp.prototype.test", func(pattern, flags string) bool {
			return strings.Contains(pattern, `\b`) && strings.Contains(pattern, `\d`)
		}, func(ctx *interp.HookCtx) *interp.Override {
			return &interp.Override{Replace: true, Return: interp.Undefined()} // no match
		}),
	})
	b.add(&Defect{
		ID: "he-005", Engine: "Hermes", AttrVersion: "v0.1.1",
		Component: Implementation, APIType: "String", API: "String.prototype.includes",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, Test262: true, New: true,
		Note:    "includes(\"\") returns false; the empty string occurs in every string",
		Witness: `print("abc".includes(""));`,
		Hook: onAPI("String.prototype.includes", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString && ctx.Args[0].Str() == ""
		}, ret(interp.Bool(false))),
	})
	b.add(&Defect{
		ID: "he-006", Engine: "Hermes", AttrVersion: "v0.1.1",
		Component: Implementation, APIType: "Object", API: "Object.getPrototypeOf",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: false,
		Note:    "getPrototypeOf throws TypeError on primitives (ES5 behaviour kept in ES2015 mode)",
		Witness: `print(Object.getPrototypeOf("s") === String.prototype);`,
		Hook: onAPI("Object.getPrototypeOf", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && !ctx.Args[0].IsObject() && !ctx.Args[0].IsNullish()
		}, throwE("TypeError", "Object.getPrototypeOf called on non-object")),
	})
	b.add(&Defect{
		ID: "he-007", Engine: "Hermes", AttrVersion: "v0.1.1",
		Component: CodeGen, APIType: "other", API: "Math.min",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "Math.min() with no arguments returns -Infinity instead of +Infinity",
		Witness: `print(Math.min());`,
		Hook:    onAPI("Math.min", noArgs(), ret(interp.Number(math.Inf(-1)))),
	})
	b.add(&Defect{
		ID: "he-008", Engine: "Hermes", AttrVersion: "v0.3.0",
		Component: ParserComp, APIType: "other", API: "parser",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:     "parser rejects \\u{...} code point escapes in string literals",
		Witness:  `print("\u{48}i");`,
		PreParse: rejectSource(`\u{`, "malformed Unicode character escape sequence"),
	})
	b.add(&Defect{
		ID: "he-009", Engine: "Hermes", AttrVersion: "v0.3.0",
		Component: ParserComp, APIType: "other", API: "eval",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, Test262: true, New: true,
		Note: "eval accepts strict-mode functions with duplicate parameter names",
		Witness: `eval("'use strict'; function d(a, a) { return a; } print(d(1, 2));");
print("after");`,
		Hook: lenientEvalHook("function"),
	})
	b.add(&Defect{
		ID: "he-010", Engine: "Hermes", AttrVersion: "v0.3.0",
		Component: Implementation, APIType: "Object", API: "Object.keys",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "Object.keys returns keys in reverse insertion order",
		Witness: `print(Object.keys({a: 1, b: 2, c: 3}));`,
		Hook: onAPI("Object.keys", nil, mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
			if res.IsObject() && res.Obj().IsArray() {
				e := res.Obj().ArrayElems()
				for i, j := 0, len(e)-1; i < j; i, j = i+1, j-1 {
					e[i], e[j] = e[j], e[i]
				}
			}
			return res
		})),
	})
	b.add(&Defect{
		ID: "he-011", Engine: "Hermes", AttrVersion: "v0.3.0",
		Component: CodeGen, APIType: "String", API: "String.prototype.lastIndexOf",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "lastIndexOf returns the first occurrence",
		Witness: `print("abcabc".lastIndexOf("b"));`,
		Hook: onAPI("String.prototype.lastIndexOf", argString(0),
			retFn(func(ctx *interp.HookCtx) interp.Value {
				return interp.Number(float64(strings.Index(ctx.This.Str(), ctx.Args[0].Str())))
			})),
	})
	b.add(&Defect{
		ID: "he-012", Engine: "Hermes", AttrVersion: "v0.3.0",
		Component: CodeGen, APIType: "other", API: "Number",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, Test262: true, New: true,
		Note:    "Number(\"0o17\") returns NaN; octal string numerals unsupported",
		Witness: `print(Number("0o17"));`,
		Hook: onAPI("Number", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString &&
				strings.HasPrefix(ctx.Args[0].Str(), "0o")
		}, ret(interp.Number(math.NaN()))),
	})
	b.add(&Defect{
		ID: "he-013", Engine: "Hermes", AttrVersion: "v0.3.0",
		Component: Implementation, APIType: "other", API: "JSON.stringify",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: false,
		Note:    "JSON.stringify(Infinity) emits Infinity instead of null",
		Witness: `print(JSON.stringify([1 / 0]));`,
		Hook: onAPI("JSON.stringify", func(ctx *interp.HookCtx) bool {
			if len(ctx.Args) == 0 {
				return false
			}
			a := ctx.Args[0]
			if a.Kind() == interp.KindNumber && math.IsInf(a.Num(), 0) {
				return true
			}
			if a.IsObject() && a.Obj().IsArray() {
				for _, e := range a.Obj().ArrayElems() {
					if e.Kind() == interp.KindNumber && math.IsInf(e.Num(), 0) {
						return true
					}
				}
			}
			return false
		}, mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
			if res.Kind() == interp.KindString {
				return interp.String(strings.ReplaceAll(res.Str(), "null", "Infinity"))
			}
			return res
		})),
	})
	b.add(&Defect{
		ID: "he-014", Engine: "Hermes", AttrVersion: "v0.4.0",
		Component: Implementation, APIType: "Array", API: "Array.prototype.splice",
		Channel: ChannelGen, Verified: true, DevFixed: false, New: true,
		Note: "splice with negative deleteCount removes through the end",
		Witness: `var a = [1, 2, 3, 4];
a.splice(1, -1);
print(a);`,
		Hook: onAPI("Array.prototype.splice", argNeg(1),
			func(ctx *interp.HookCtx) *interp.Override {
				if !ctx.This.IsObject() || !ctx.This.Obj().IsArray() {
					return nil
				}
				o := ctx.This.Obj()
				start := int(ctx.Args[0].Num())
				elems := o.ArrayElems()
				if start < 0 {
					start += len(elems)
				}
				if start < 0 || start > len(elems) {
					return nil
				}
				removed := ctx.In.NewArray(append([]interp.Value(nil), elems[start:]...))
				o.SetArrayElems(elems[:start])
				return &interp.Override{Replace: true, Return: interp.ObjValue(removed)}
			}),
	})
	b.add(&Defect{
		ID: "he-015", Engine: "Hermes", AttrVersion: "v0.6.0",
		Component: Optimizer, APIType: "other", API: "functier",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note: "optimizing tier drops return values of hot functions (23rd call)",
		Witness: `function hot(i) { return i + 1; }
var sum = 0;
for (var i = 0; i < 30; i++) { sum += hot(i); }
print(sum);`,
		Hook: onTier(23, func(ctx *interp.HookCtx) *interp.Override {
			return &interp.Override{Replace: true, Return: interp.Undefined()}
		}),
	})
	b.add(&Defect{
		ID: "he-016", Engine: "Hermes", AttrVersion: "v0.6.0",
		Component: CodeGen, APIType: "other", API: "isNaN",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "isNaN(\" \") returns true; ToNumber of whitespace strings is +0",
		Witness: `print(isNaN(" "));`,
		Hook: onAPI("isNaN", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString &&
				strings.TrimSpace(ctx.Args[0].Str()) == "" && ctx.Args[0].Str() != ""
		}, ret(interp.Bool(true))),
	})
}

// quickJS seeds the 17 QuickJS defects (17/14/14/4).
func (b *catalogBuilder) quickJS() {
	// Listing 6: boolean-keyed property store appends to arrays.
	b.add(&Defect{
		ID: "qu-001", Engine: "QuickJS", AttrVersion: "2019-07-09",
		Component: CodeGen, APIType: "Array", API: "propset",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, Test262: true, New: true,
		Note: "Listing 6: obj[true] = v appends v to the array",
		Witness: `var foo = function() {
  var property = true;
  var obj = [1, 2, 5];
  obj[property] = 10;
  print(obj);
  print(obj[property]);
};
foo();`,
		Hook: onPropSet(func(ctx *interp.HookCtx) bool {
			return ctx.Obj.IsArray() && ctx.Key.Kind() == interp.KindString && ctx.Key.Str() == "true"
		}, func(ctx *interp.HookCtx) *interp.Override {
			ctx.Obj.AppendElem(ctx.Val)
			return &interp.Override{Handled: true}
		}),
	})
	// Listing 9: crash in String.prototype.normalize on an empty string.
	b.add(&Defect{
		ID: "qu-002", Engine: "QuickJS", AttrVersion: "2019-07-09",
		Component: Implementation, APIType: "String", API: "String.prototype.normalize",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: false,
		Note: "Listing 9: normalize(true) on the empty string crashes (memory safety)",
		Witness: `var foo = function(str) {
  str.normalize(true);
};
var parameter = "";
foo(parameter);`,
		Hook: onAPI("String.prototype.normalize", and(thisEmptyString(), argBool(0)),
			crash("heap-buffer-overflow in js_string_normalize")),
	})
	b.add(&Defect{
		ID: "qu-003", Engine: "QuickJS", AttrVersion: "2019-07-09",
		Component: Implementation, APIType: "eval", API: "eval",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: false,
		Note:    "eval of a non-string coerces to string instead of returning it unchanged",
		Witness: `print(typeof eval(5));`,
		Hook: onAPI("eval", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindNumber
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			return interp.String(jsnum.Format(ctx.Args[0].Num()))
		})),
	})
	b.add(&Defect{
		ID: "qu-004", Engine: "QuickJS", AttrVersion: "2019-09-01",
		Component: ParserComp, APIType: "eval", API: "eval",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "eval throws SyntaxError for comment-only programs",
		Witness: `print(eval("// nothing here"));`,
		Hook: onAPI("eval", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString &&
				strings.HasPrefix(strings.TrimSpace(ctx.Args[0].Str()), "//")
		}, throwE("SyntaxError", "unexpected end of comment-only input")),
	})
	b.add(&Defect{
		ID: "qu-005", Engine: "QuickJS", AttrVersion: "2019-09-01",
		Component: RegexEngine, APIType: "other", API: "RegExp.prototype.test",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "backreferences always match the empty string",
		Witness: `print(/(ab)\1/.test("abab"));`,
		Hook: onRegex("RegExp.prototype.test", func(pattern, flags string) bool {
			return strings.Contains(pattern, `\1`)
		}, func(ctx *interp.HookCtx) *interp.Override {
			return &interp.Override{Replace: true, Return: interp.Undefined()}
		}),
	})
	b.add(&Defect{
		ID: "qu-006", Engine: "QuickJS", AttrVersion: "2019-09-01",
		Component: Implementation, APIType: "Array", API: "Array.prototype.sort",
		Channel: ChannelGen, Verified: true, DevFixed: true, Test262: true, New: true,
		Note:    "default sort comparator is numeric instead of lexicographic",
		Witness: `print([10, 9, 1].sort());`,
		Hook: onAPI("Array.prototype.sort", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) == 0 || !ctx.Args[0].IsObject()
		}, mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
			if res.IsObject() && res.Obj().IsArray() {
				elems := res.Obj().ArrayElems()
				numericSort(elems)
			}
			return res
		})),
	})
	b.add(&Defect{
		ID: "qu-007", Engine: "QuickJS", AttrVersion: "2019-09-01",
		Component: Implementation, APIType: "Object", API: "Object.isFrozen",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, Test262: true, New: true,
		Note:    "Object.isFrozen(primitive) returns false; primitives are frozen by definition",
		Witness: `print(Object.isFrozen(5));`,
		Hook: onAPI("Object.isFrozen", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && !ctx.Args[0].IsObject()
		}, ret(interp.Bool(false))),
	})
	b.add(&Defect{
		ID: "qu-008", Engine: "QuickJS", AttrVersion: "2019-09-18",
		Component: StrictModeComp, APIType: "Object", API: "Object.defineProperty",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, Test262: true, New: true,
		StrictOnly: true, WitnessStrict: true,
		Note: "strict mode: defineProperty on a frozen object returns instead of throwing",
		Witness: `"use strict";
var o = Object.freeze({});
try {
  Object.defineProperty(o, "x", {value: 1});
  print("no throw");
} catch (e) {
  print("throws", e instanceof TypeError);
}`,
		Hook: onAPI("Object.defineProperty", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].IsObject() && hasHiddenFlag(ctx.Args[0].Obj(), "frozen")
		}, noThrow(interp.Undefined())),
	})
	b.add(&Defect{
		ID: "qu-009", Engine: "QuickJS", AttrVersion: "2019-09-18",
		Component: Implementation, APIType: "TypedArray", API: "new Int32Array",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note: "Int32Array construction from arrays with holes yields garbage values",
		Witness: `var a = new Int32Array([1, , 3]);
print(a[1]);`,
		Hook: onAPI("new Int32Array", func(ctx *interp.HookCtx) bool {
			if len(ctx.Args) == 0 || !ctx.Args[0].IsObject() || !ctx.Args[0].Obj().IsArray() {
				return false
			}
			for _, e := range ctx.Args[0].Obj().ArrayElems() {
				if e.IsUndefined() {
					return true
				}
			}
			return false
		}, mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
			if res.IsObject() && res.Obj().ElemKind != interp.ElemNone {
				for i, e := range ctx.Args[0].Obj().ArrayElems() {
					if e.IsUndefined() && i < res.Obj().ArrayLen {
						res.Obj().TypedSet(i, 7)
					}
				}
			}
			return res
		})),
	})
	b.add(&Defect{
		ID: "qu-010", Engine: "QuickJS", AttrVersion: "2019-09-18",
		Component: Implementation, APIType: "other", API: "Function.prototype.bind",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note: "bind drops the pre-bound argument list",
		Witness: `function add(a, b) { return a + b; }
var inc = add.bind(null, 1);
print(inc(5));`,
		Hook: onAPI("Function.prototype.bind", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 1
		}, mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
			if res.IsObject() {
				res.Obj().BoundArgs = nil
			}
			return res
		})),
	})
	b.add(&Defect{
		ID: "qu-011", Engine: "QuickJS", AttrVersion: "2019-10-27",
		Component: CodeGen, APIType: "String", API: "String.prototype.padStart",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "padStart with an undefined filler pads with \"undefined\"",
		Witness: `print("5".padStart(4));`,
		Hook: onAPI("String.prototype.padStart", argMissingOrUndef(1),
			retFn(func(ctx *interp.HookCtx) interp.Value {
				s := ctx.This.Str()
				n := 0
				if len(ctx.Args) > 0 {
					n = jsnum.SafeInt(ctx.Args[0].Num())
				}
				pad := "undefinedundefinedundefined"
				if n > len(s) && n-len(s) <= len(pad) {
					s = pad[:n-len(s)] + s
				}
				return interp.String(s)
			})),
	})
	b.add(&Defect{
		ID: "qu-012", Engine: "QuickJS", AttrVersion: "2019-10-27",
		Component: CodeGen, APIType: "Number", API: "Number.prototype.toString",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "toString(radix>10) produces uppercase digits",
		Witness: `print((255).toString(16));`,
		Hook: onAPI("Number.prototype.toString", argBigNum(0, 11),
			mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
				if res.Kind() == interp.KindString {
					return interp.String(strings.ToUpper(res.Str()))
				}
				return res
			})),
	})
	b.add(&Defect{
		ID: "qu-013", Engine: "QuickJS", AttrVersion: "2019-10-27",
		Component: Implementation, APIType: "Object", API: "Object.values",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "Object.values returns the keys",
		Witness: `print(Object.values({a: 1, b: 2}));`,
		Hook: onAPI("Object.values", nil, retFn(func(ctx *interp.HookCtx) interp.Value {
			arr := ctx.In.NewArray(nil)
			if len(ctx.Args) > 0 && ctx.Args[0].IsObject() {
				for _, k := range ctx.Args[0].Obj().EnumerableKeys() {
					arr.AppendElem(interp.String(k))
				}
			}
			return interp.ObjValue(arr)
		})),
	})
	b.add(&Defect{
		ID: "qu-014", Engine: "QuickJS", AttrVersion: "2019-10-27",
		Component: CodeGen, APIType: "other", API: "Math.pow",
		Channel: ChannelSpecData, Verified: false, DevFixed: false, New: false,
		Note:    "Math.pow(x, -0) returns 0 instead of 1",
		Witness: `print(Math.pow(2, -0));`,
		Hook: onAPI("Math.pow", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 1 && ctx.Args[1].Kind() == interp.KindNumber &&
				ctx.Args[1].Num() == 0 && math.Signbit(ctx.Args[1].Num())
		}, ret(interp.Number(0))),
	})
	b.add(&Defect{
		ID: "qu-015", Engine: "QuickJS", AttrVersion: "2020-01-05",
		Component: Optimizer, APIType: "other", API: "functier",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note: "optimized code raises a spurious TypeError on the 31st call",
		Witness: `function hot(i) { return i; }
var sum = 0;
for (var i = 0; i < 40; i++) { sum += hot(i); }
print(sum);`,
		Hook: onTier(31, func(ctx *interp.HookCtx) *interp.Override {
			return &interp.Override{Replace: true,
				Err: &interp.Throw{Val: ctx.In.NewError("TypeError", "assertion failed in optimized frame")}}
		}),
	})
	b.add(&Defect{
		ID: "qu-016", Engine: "QuickJS", AttrVersion: "2020-01-05",
		Component: StrictModeComp, APIType: "Array", API: "Object.freeze",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		StrictOnly: true, WitnessStrict: true,
		Note: "strict mode: Object.freeze does not freeze arrays",
		Witness: `"use strict";
var a = Object.freeze([1]);
try { a[0] = 2; } catch (e) {}
print(a[0]);`,
		Hook: onAPI("Object.freeze", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].IsObject() && ctx.Args[0].Obj().IsArray()
		}, retFn(func(ctx *interp.HookCtx) interp.Value { return ctx.Args[0] })),
	})
	b.add(&Defect{
		ID: "qu-017", Engine: "QuickJS", AttrVersion: "2020-04-12",
		Component: CodeGen, APIType: "String", API: "String.prototype.trim",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "trim does not strip the BOM (\\uFEFF)",
		Witness: `print(("\uFEFF" + "x").trim().length);`,
		Hook: onAPI("String.prototype.trim", func(ctx *interp.HookCtx) bool {
			return ctx.This.Kind() == interp.KindString && strings.ContainsRune(ctx.This.Str(), '\uFEFF')
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			return interp.String(strings.Trim(ctx.This.Str(), " \t\n\r"))
		})),
	})
}

// ---------- shared behaviour helpers ----------

// toFixedHook replicates toFixed digits for the toPrecision defect.
func toFixedHook(x float64, digits int) string {
	neg := math.Signbit(x)
	a := math.Abs(x)
	pow := math.Pow(10, float64(digits))
	scaled := a * pow
	i := math.Floor(scaled)
	if scaled-i >= 0.5 {
		i++
	}
	s := jsnum.Format(i / pow)
	if neg && i != 0 {
		s = "-" + s
	}
	return s
}

// numericSort sorts values as numbers (the qu-006 defect behaviour).
func numericSort(elems []interp.Value) {
	for i := 1; i < len(elems); i++ {
		for j := i; j > 0; j-- {
			a, b := elems[j-1], elems[j]
			if a.Kind() == interp.KindNumber && b.Kind() == interp.KindNumber && a.Num() > b.Num() {
				elems[j-1], elems[j] = elems[j], elems[j-1]
			}
		}
	}
}

// fakeUnanchored re-executes the pattern without stickiness/anchoring and
// fakes the match it finds (nil when the honest engine agrees).
func fakeUnanchored(ctx *interp.HookCtx, stripPrefix string) *interp.Override {
	pattern := strings.TrimPrefix(ctx.Pattern, stripPrefix)
	flags := strings.ReplaceAll(ctx.Flags, "y", "")
	re, err := regex.Compile(pattern, flags)
	if err != nil {
		return nil
	}
	input := ""
	if len(ctx.Args) > 0 {
		input = ctx.Args[0].Str()
	}
	m, err := re.Exec(input, 0)
	if err != nil || m == nil {
		return nil
	}
	return &interp.Override{Replace: true,
		Return: interp.ObjValue(fakeMatchObject(m.Groups[0][0], m.Groups[0][1]))}
}

// hermesReverseFillHook implements the Listing-2 allocation defect: every
// element write left of the lowest index written so far costs work
// proportional to the relocation distance.
func hermesReverseFillHook() interp.Hook {
	return func(ctx *interp.HookCtx) *interp.Override {
		if ctx.Site != interp.HookArrayGrow {
			return nil
		}
		o := ctx.Obj
		length := int64(o.ArrayLength())
		if length < 1024 {
			return nil
		}
		minKey := "__hermes_min_written__"
		min := length
		if p, ok := o.GetOwnProperty(minKey); ok {
			min = int64(p.Value.Num())
		}
		idx := int64(ctx.Index)
		if idx >= min {
			return nil
		}
		o.SetSlot(minKey, interp.Number(float64(idx)), 0)
		return &interp.Override{CostExtra: (min - idx) + (length-idx)/64}
	}
}
