package resolve_test

import (
	"testing"

	"comfort/internal/js/ast"
	"comfort/internal/js/builtins"
	"comfort/internal/js/interp"
	"comfort/internal/js/parser"
	"comfort/internal/js/resolve"
)

// run executes src on a fresh reference runtime, optionally resolving
// first, and returns (printed output, error rendering).
func run(t *testing.T, src string, resolved bool) (string, string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if resolved {
		resolve.Program(prog)
	}
	in := builtins.NewRuntime(interp.Config{Fuel: 500000})
	errStr := ""
	if rerr := in.Run(prog); rerr != nil {
		errStr = rerr.Error()
	}
	return in.Out.String(), errStr
}

// both asserts the two evaluator paths agree, and returns the output.
func both(t *testing.T, src string) (string, string) {
	t.Helper()
	ro, re := run(t, src, true)
	mo, me := run(t, src, false)
	if ro != mo || re != me {
		t.Errorf("paths diverge on %q:\nresolved: out=%q err=%q\nmap:      out=%q err=%q", src, ro, re, mo, me)
	}
	return ro, re
}

// TestScopeSemantics cross-checks the slot evaluator against the map
// evaluator on the scope-rule corner cases the resolver must reproduce, and
// pins the expected behaviour where it is observable.
func TestScopeSemantics(t *testing.T) {
	cases := []struct {
		name, src string
		out       string // expected print output ("" = only cross-check)
		errSubstr string
	}{
		{name: "let shadow read before decl", // TDZ-free: pre-decl reads see the outer binding
			src: `function f(){ let x = 1; { print(x); let x = 2; print(x); } print(x); } f();`,
			out: "1\n2\n1\n"},
		{name: "var hoisting", src: `function f(){ print(v); var v = 3; print(v); } f();`, out: "undefined\n3\n"},
		{name: "var undefined keeps value", src: `function f(){ var x = 1; var x; print(x); } f();`, out: "1\n"},
		{name: "func decl hoists past block", // closure env is the function frame, not the block
			src: `function f(){ { let y = 1; function g(){ return typeof y; } var h = g; } return h(); } var y2; print(f());`,
			out: "undefined\n"},
		{name: "self name immutable silent", src: `var f = function me(){ me = 5; return typeof me; }; print(f());`, out: "function\n"},
		{name: "self name shadowed by param", src: `var f = function me(me){ return me; }; print(f(7));`, out: "7\n"},
		{name: "self name shadowed by outer var", // Has walks the closure chain: self does not bind
			src: `function outer(){ var g = 1; var f = function g(){ g = 2; }; f(); return g; } print(outer());`, out: "2\n"},
		{name: "self name typeof with outer shadow",
			src: `function outer(){ var g = 1; var f = function g(){ return typeof g; }; return f(); } print(outer());`, out: "number\n"},
		{name: "func decl self assign hits hoisted var",
			src: `function outer(){ function g(){ g = 1; return typeof g; } var r = g(); return r + "," + typeof g; } print(outer());`, out: "number,number\n"},
		{name: "self plus inner var share binding",
			src: `var f = function me(){ var me; print(typeof me); me = 3; print(typeof me); }; f();`, out: "function\nfunction\n"},
		{name: "self unbound inner var declares",
			src: `var me = 0; function outer(){ var me = 9; var f = function me(){ var me; return typeof me; }; return f(); } print(outer());`, out: "undefined\n"},
		{name: "arguments object", src: `function f(){ return arguments.length + "," + arguments[1]; } print(f(1,2,3));`, out: "3,2\n"},
		{name: "arguments in arrow", src: `function f(){ var a = () => arguments[0]; return a(); } print(f(42));`, out: "42\n"},
		{name: "duplicate params", src: `function f(a, a){ return a; } print(f(1, 2));`, out: "2\n"},
		{name: "param var collision", src: `function f(a){ var a; print(a); var a = 9; print(a); } f(5);`, out: "5\n9\n"},
		{name: "func decl overwrites param", src: `function f(g){ function g(){ return 1; } return g(); } print(f(0));`, out: "1\n"},
		{name: "catch param", src: `try { throw 1; } catch (e) { print(e); } print(typeof e);`, out: "1\nundefined\n"},
		{name: "catch param shadows", src: `function f(){ var e = "outer"; try { throw "in"; } catch (e) { print(e); } print(e); } f();`, out: "in\nouter\n"},
		{name: "switch case lets", src: `function f(n){ switch(n){ case 1: let z = "a"; case 2: print(typeof z); } } f(2); f(1);`, out: "undefined\nstring\n"},
		{name: "for let closure", src: `function f(){ var fs = []; for (let i = 0; i < 3; i++) { fs[fs.length] = function(){ return i; }; } return fs[0]() + "" + fs[2](); } print(f());`},
		{name: "for-in let per iteration", src: `var o = {a:1, b:2}; var ks = ""; for (let k in o) { ks = ks + k; } print(ks);`, out: "ab\n"},
		{name: "for-of var undefined quirk", // declareVar skips undefined writes per iteration
			src: `function f(){ for (var x of [1, undefined, 2]) { print(x); } } f();`,
			out: "1\n1\n2\n"},
		{name: "typeof undeclared", src: `print(typeof zzz); function f(){ print(typeof zzz); } f();`, out: "undefined\nundefined\n"},
		{name: "typeof let before decl in block", src: `function f(){ { print(typeof q); let q = 1; } } f();`, out: "undefined\n"},
		{name: "delete local is false", src: `function f(){ var x = 1; print(delete x); } f();`, out: "false\n"},
		{name: "delete global", src: `gg = 1; print(delete gg); print(typeof gg);`, out: "true\nundefined\n"},
		{name: "const assignment throws", src: `function f(){ const c = 1; c = 2; } f();`, errSubstr: "Assignment to constant"},
		{name: "sloppy undeclared assign creates global", src: `function f(){ und = 3; } f(); print(und);`, out: "3\n"},
		{name: "braceless if let", src: `function f(){ if (true) let w = 1; print(typeof w); } f();`},
		{name: "eval sees only globals", src: `var ge = 1; function f(){ var le = 2; return eval("typeof le") + eval("typeof ge"); } print(f());`, out: "undefinednumber\n"},
		{name: "eval declares global lexical", src: `eval("let el = 5;"); print(el);`, out: "5\n"},
		{name: "closure over call frames", src: `function mk(n){ return function(){ return n; }; } var a = mk(1), b = mk(2); print(a() + b());`, out: "3\n"},
		{name: "nested function depth", src: `function f(){ var x = 1; function g(){ var y = 2; function h(){ return x + y; } return h(); } return g(); } print(f());`, out: "3\n"},
		{name: "global shadow from function", src: `var gv = "g"; function f(){ var gv = "l"; return gv; } print(f() + gv);`, out: "lg\n"},
		{name: "globalThis mirror", src: `var tv = 4; print(globalThis.tv);`, out: "4\n"},
		{name: "top-level block let", src: `{ let bl = "b"; print(bl); } print(typeof bl);`, out: "b\nundefined\n"},
		{name: "top-level block var global split", // block vars land in the global env map, not on the global object
			src: `{ var j = 5; } print(globalThis.j); print(j);`, out: "undefined\n5\n"},
		{name: "top-level for var global split",
			src: `for (var i = 0; i < 3; i++) {} print(globalThis.i); print(i);`, out: "undefined\n3\n"},
		{name: "labelled loops", src: `function f(){ var s=""; outer: for (let i=0;i<3;i++){ for (let j=0;j<3;j++){ if (j==1) continue outer; s+=i+""+j; } } return s; } print(f());`, out: "001020\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, errStr := both(t, tc.src)
			if tc.out != "" && out != tc.out {
				t.Errorf("output %q, want %q", out, tc.out)
			}
			if tc.errSubstr != "" && !contains(errStr, tc.errSubstr) {
				t.Errorf("error %q, want substring %q", errStr, tc.errSubstr)
			}
		})
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestSlotLayout pins the static layout the resolver computes.
func TestSlotLayout(t *testing.T) {
	src := `function f(a, b) { var c = a; let d = b; return function g() { return a + d; }; }`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	resolve.Program(prog)
	fd, ok := prog.Body[0].(*ast.FuncDecl)
	if !ok {
		t.Fatal("expected function declaration")
	}
	sc := fd.Fn.Scope
	if sc == nil {
		t.Fatal("function scope not annotated")
	}
	// a, b, the self-name f (Call binds it for declarations too), c, d —
	// and no arguments slot (the body never mentions it).
	if sc.NumSlots != 5 {
		t.Errorf("frame size %d (%v), want 5", sc.NumSlots, sc.Names)
	}
	if sc.ArgumentsSlot != -1 {
		t.Errorf("arguments slot %d materialised despite being unobservable", sc.ArgumentsSlot)
	}
	if len(sc.ParamSlots) != 2 {
		t.Errorf("param slots %v, want 2 entries", sc.ParamSlots)
	}
}

// TestArgumentsSlotMaterialises checks the arguments-object elision is
// exactly as conservative as required.
func TestArgumentsSlotMaterialises(t *testing.T) {
	progFor := func(src string) *ast.ScopeInfo {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		resolve.Program(prog)
		return prog.Body[0].(*ast.FuncDecl).Fn.Scope
	}
	if sc := progFor(`function f() { return arguments; }`); sc.ArgumentsSlot < 0 {
		t.Error("direct use must materialise the arguments slot")
	}
	if sc := progFor(`function f() { return () => arguments[0]; }`); sc.ArgumentsSlot < 0 {
		t.Error("arrow use must materialise the enclosing arguments slot")
	}
	if sc := progFor(`function f() { return function(){ return arguments; }; }`); sc.ArgumentsSlot >= 0 {
		t.Error("a nested non-arrow function's arguments must not materialise the outer slot")
	}
}

// TestRefKinds pins representative reference classifications.
func TestRefKinds(t *testing.T) {
	src := `var g = 1;
function f(p) {
  var l = p;
  { print(l); print(g); print(q); let q = 2; print(q); }
  return l;
}`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	resolve.Program(prog)
	var idents []*ast.Ident
	ast.Walk(prog, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			idents = append(idents, id)
		}
		return true
	})
	kindOf := func(name string) []ast.RefKind {
		var ks []ast.RefKind
		for _, id := range idents {
			if id.Name == name {
				ks = append(ks, id.Ref.Kind)
			}
		}
		return ks
	}
	for _, k := range kindOf("l") {
		if k != ast.RefSlot {
			t.Errorf("reference to var l classified %v, want RefSlot", k)
		}
	}
	for _, k := range kindOf("g") {
		if k != ast.RefGlobal {
			t.Errorf("reference to global g classified %v, want RefGlobal", k)
		}
	}
	ks := kindOf("q")
	if len(ks) != 2 || ks[0] != ast.RefDynamic || ks[1] != ast.RefSlot {
		t.Errorf("references to q classified %v, want [RefDynamic RefSlot]", ks)
	}
}
