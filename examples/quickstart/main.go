// Quickstart: generate JS test programs with the COMFORT pipeline and
// differentially test them across all engines' latest builds.
package main

import (
	"fmt"
	"math/rand"

	"comfort"
)

func main() {
	fuzzer := comfort.NewComfortFuzzer()
	testbeds := []comfort.Testbed{}
	for _, e := range comfort.Engines() {
		testbeds = append(testbeds, comfort.Testbed{Version: e.Latest()})
	}

	rng := rand.New(rand.NewSource(42))
	fmt.Println("generating and differentially testing 30 test cases...")
	buggy := 0
	for i := 0; i < 30; i++ {
		for _, src := range fuzzer.Next(rng) {
			cr := comfort.DiffTest(src, testbeds, 150000, 42)
			if !cr.Verdict.IsBuggy() {
				continue
			}
			buggy++
			fmt.Printf("\n=== divergence #%d (%s) ===\n", buggy, cr.Verdict)
			for _, d := range cr.Deviations {
				fmt.Printf("  deviant: %-40s %s\n", d.Testbed.ID(), d.Result.Outcome)
			}
			fmt.Printf("--- test case ---\n%s\n", src)
		}
	}
	fmt.Printf("\n%d divergent test cases found\n", buggy)
}
