package fuzzers

import (
	"math/rand"
	"testing"

	"comfort/internal/js/lint"
)

func TestAllFuzzersProduceCases(t *testing.T) {
	for _, f := range All() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			total, valid := 0, 0
			for i := 0; i < 25; i++ {
				for _, src := range f.Next(rng) {
					if src == "" {
						t.Fatal("empty test case")
					}
					total++
					if lint.Valid(src) {
						valid++
					}
				}
			}
			if total == 0 {
				t.Fatal("no cases produced")
			}
			// Every strategy must produce a usable share of parseable code
			// (DeepSmith's short-context model sits lowest, near the
			// paper's ~31% LSTM rate).
			if float64(valid)/float64(total) < 0.1 {
				t.Errorf("validity too low: %d/%d", valid, total)
			}
			t.Logf("%s: %d cases, %d valid", f.Name(), total, valid)
		})
	}
}

func TestFuzzerDeterminism(t *testing.T) {
	for _, mk := range []func() Fuzzer{
		func() Fuzzer { return NewDIE() },
		func() Fuzzer { return NewFuzzilli() },
		func() Fuzzer { return NewCodeAlchemist() },
	} {
		a := mk()
		b := mk()
		ra, rb := rand.New(rand.NewSource(5)), rand.New(rand.NewSource(5))
		for i := 0; i < 10; i++ {
			ca, cb := a.Next(ra), b.Next(rb)
			if len(ca) != len(cb) {
				t.Fatalf("%s: nondeterministic batch size", a.Name())
			}
			for j := range ca {
				if ca[j] != cb[j] {
					t.Fatalf("%s: nondeterministic output", a.Name())
				}
			}
		}
	}
}

// The baselines deliberately emit a share of syntactically invalid output
// (the paper's Figure 9 measures all of them below a 60% passing rate), so
// their validity is checked as a band, not a guarantee.
func TestBaselineValidityBands(t *testing.T) {
	for _, mk := range []func() Fuzzer{
		func() Fuzzer { return NewFuzzilli() },
		func() Fuzzer { return NewCodeAlchemist() },
		func() Fuzzer { return NewDIE() },
	} {
		f := mk()
		rng := rand.New(rand.NewSource(2))
		valid, total := 0, 0
		for i := 0; i < 300; i++ {
			for _, src := range f.Next(rng) {
				total++
				if lint.Valid(src) {
					valid++
				}
			}
		}
		rate := float64(valid) / float64(total)
		if rate < 0.35 || rate > 0.75 {
			t.Errorf("%s validity %.2f outside the Figure-9 band [0.35, 0.75]", f.Name(), rate)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"COMFORT", "deepsmith", "Fuzzilli", "CodeAlchemist", "DIE", "montage"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown fuzzer resolved")
	}
}
