package spec

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestExtractClauses(t *testing.T) {
	clauses := ExtractClauses(Document)
	if len(clauses) < 40 {
		t.Fatalf("expected at least 40 clauses, got %d", len(clauses))
	}
	var substr *Clause
	for i := range clauses {
		if clauses[i].ID == "sec-string.prototype.substr" {
			substr = &clauses[i]
		}
	}
	if substr == nil {
		t.Fatal("substr clause not found")
	}
	if len(substr.Steps) != 12 {
		t.Errorf("substr steps: got %d want 12", len(substr.Steps))
	}
	if !strings.Contains(substr.Steps[3], "Let intStart be ToInteger(start)") {
		t.Errorf("unexpected step 4: %q", substr.Steps[3])
	}
}

// TestSubstrRuleMatchesFigure4 checks the paper's Figure-4 walkthrough: the
// substr rules must mark start as an integer with a `< 0` boundary scope,
// and length as an integer with an `=== undefined` condition.
func TestSubstrRuleMatchesFigure4(t *testing.T) {
	db := Default()
	rules, ok := db.Lookup("String.prototype.substr")
	if !ok {
		t.Fatal("substr not in database")
	}
	if len(rules) != 2 {
		t.Fatalf("substr params: got %d want 2", len(rules))
	}
	start, length := rules[0], rules[1]
	if start.Name != "start" || start.Type != "integer" {
		t.Errorf("start rule: %+v", start)
	}
	if len(start.Scopes) == 0 || start.Scopes[0] != 0 {
		t.Errorf("start scopes: %v", start.Scopes)
	}
	hasCond := func(p ParamRule, sub string) bool {
		for _, c := range p.Conditions {
			if strings.Contains(c, sub) {
				return true
			}
		}
		return false
	}
	if !hasCond(start, "< 0") {
		t.Errorf("start conditions missing '< 0': %v", start.Conditions)
	}
	if length.Name != "length" || length.Type != "integer" {
		t.Errorf("length rule: %+v", length)
	}
	if !hasCond(length, "undefined") {
		t.Errorf("length conditions missing undefined: %v", length.Conditions)
	}
	hasVal := func(p ParamRule, v string) bool {
		for _, x := range p.Values {
			if x == v {
				return true
			}
		}
		return false
	}
	for _, v := range []string{"NaN", "0", "Infinity", "-Infinity"} {
		if !hasVal(start, v) {
			t.Errorf("start values missing %s: %v", v, start.Values)
		}
	}
	if !hasVal(length, "undefined") {
		t.Errorf("length values missing undefined: %v", length.Values)
	}
}

func TestRangeErrorBoundsMined(t *testing.T) {
	db := Default()
	rules, ok := db.Lookup("Number.prototype.toFixed")
	if !ok {
		t.Fatal("toFixed not in database")
	}
	found := false
	for _, c := range rules[0].Conditions {
		if strings.Contains(c, "RangeError") {
			found = true
		}
	}
	if !found {
		t.Errorf("toFixed should mine the RangeError bounds: %v", rules[0].Conditions)
	}
	// Boundary neighbours of the 0..100 range must be probed.
	want := map[string]bool{"-1": false, "101": false}
	for _, v := range rules[0].Values {
		if _, ok := want[v]; ok {
			want[v] = true
		}
	}
	for v, seen := range want {
		if !seen {
			t.Errorf("toFixed values missing boundary %s: %v", v, rules[0].Values)
		}
	}
}

func TestCoverageRateMatchesPaper(t *testing.T) {
	db := Default()
	rate := db.CoverageRate()
	// The paper reports ~82% of API/object rules extracted; our document is
	// constructed with a similar pseudo-code/prose mix.
	if rate < 0.70 || rate > 0.95 {
		t.Errorf("extraction coverage %0.2f out of the expected band [0.70, 0.95]", rate)
	}
	if db.MinedClauses < 30 {
		t.Errorf("too few mined clauses: %d", db.MinedClauses)
	}
}

func TestLookupMethod(t *testing.T) {
	db := Default()
	key, rules, ok := db.LookupMethod("substr")
	if !ok || key != "String.prototype.substr" || len(rules) != 2 {
		t.Errorf("LookupMethod(substr) = %q, %d rules, %v", key, len(rules), ok)
	}
	if _, _, ok := db.LookupMethod("definitelyNotAnAPI"); ok {
		t.Error("LookupMethod should fail for unknown methods")
	}
	if key, _, ok := db.LookupMethod("parseInt"); !ok || key != "parseInt" {
		t.Errorf("LookupMethod(parseInt) = %q, %v", key, ok)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	db := Default()
	data, err := json.Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	var re DB
	if err := json.Unmarshal(data, &re); err != nil {
		t.Fatal(err)
	}
	if len(re.Rules) != len(db.Rules) {
		t.Errorf("round trip lost rules: %d vs %d", len(re.Rules), len(db.Rules))
	}
	rules, ok := re.Lookup("String.prototype.substr")
	if !ok || len(rules) != 2 || rules[1].Name != "length" {
		t.Errorf("round-tripped substr rules wrong: %v", rules)
	}
}

func TestProseClausesNotMined(t *testing.T) {
	db := Default()
	if _, ok := db.Lookup("Function.prototype.bind"); ok {
		t.Error("prose-only clause should not be mined")
	}
	if _, ok := db.Lookup("Array.prototype.sort"); ok {
		t.Error("prose-only sort clause should not be mined")
	}
}
