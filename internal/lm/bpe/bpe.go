// Package bpe implements Byte Pair Encoding tokenisation as used by GPT-2
// and described in the paper's Section 3.2: word frequencies are counted,
// words are split into characters, and the most frequent adjacent pairs are
// merged iteratively to form a subword vocabulary. Common keywords end up
// as whole tokens while rare identifiers decompose into reusable chunks.
package bpe

import (
	"sort"
	"strings"
)

// contMarker suffixes a subword that is continued by the next subword of
// the same source word, so decoding can re-join them.
const contMarker = "▁" // ▁

// Vocab is a trained BPE vocabulary: the ordered merge rules plus the
// token-to-id table.
type Vocab struct {
	merges []mergeRule
	tokens map[string]int
	ids    []string
}

type mergeRule struct{ a, b string }

// Train builds a vocabulary from words with the given number of merges.
func Train(words []string, numMerges int) *Vocab {
	// Word frequency table.
	freq := map[string]int{}
	for _, w := range words {
		freq[w]++
	}
	// Represent each word as a sequence of symbols (initially characters).
	type entry struct {
		syms []string
		n    int
	}
	var entries []*entry
	for w, n := range freq {
		var syms []string
		for _, r := range w {
			syms = append(syms, string(r))
		}
		entries = append(entries, &entry{syms: syms, n: n})
	}
	sort.Slice(entries, func(i, j int) bool {
		return strings.Join(entries[i].syms, "") < strings.Join(entries[j].syms, "")
	})

	v := &Vocab{tokens: map[string]int{}}
	for m := 0; m < numMerges; m++ {
		// Count adjacent pairs.
		pairs := map[mergeRule]int{}
		for _, e := range entries {
			for i := 0; i+1 < len(e.syms); i++ {
				pairs[mergeRule{e.syms[i], e.syms[i+1]}] += e.n
			}
		}
		if len(pairs) == 0 {
			break
		}
		// Pick the most frequent pair (ties resolved lexicographically so
		// training is deterministic).
		var best mergeRule
		bestN := 0
		for p, n := range pairs {
			if n > bestN || (n == bestN && (p.a+p.b) < (best.a+best.b)) {
				best, bestN = p, n
			}
		}
		if bestN < 2 {
			break
		}
		v.merges = append(v.merges, best)
		merged := best.a + best.b
		for _, e := range entries {
			for i := 0; i+1 < len(e.syms); {
				if e.syms[i] == best.a && e.syms[i+1] == best.b {
					e.syms[i] = merged
					e.syms = append(e.syms[:i+1], e.syms[i+2:]...)
				} else {
					i++
				}
			}
		}
	}
	// Build the final token table from everything the corpus produced.
	add := func(tok string) {
		if _, ok := v.tokens[tok]; !ok {
			v.tokens[tok] = len(v.ids)
			v.ids = append(v.ids, tok)
		}
	}
	for _, e := range entries {
		for i, s := range e.syms {
			if i+1 < len(e.syms) {
				add(s + contMarker)
			} else {
				add(s)
			}
		}
	}
	return v
}

// Size reports the vocabulary size.
func (v *Vocab) Size() int { return len(v.ids) }

// NumMerges reports how many merge rules were learned.
func (v *Vocab) NumMerges() int { return len(v.merges) }

// EncodeWord splits one word into subword tokens; continued subwords carry
// the continuation marker.
func (v *Vocab) EncodeWord(w string) []string {
	var syms []string
	for _, r := range w {
		syms = append(syms, string(r))
	}
	for _, rule := range v.merges {
		for i := 0; i+1 < len(syms); {
			if syms[i] == rule.a && syms[i+1] == rule.b {
				syms[i] = rule.a + rule.b
				syms = append(syms[:i+1], syms[i+2:]...)
			} else {
				i++
			}
		}
	}
	out := make([]string, len(syms))
	for i, s := range syms {
		if i+1 < len(syms) {
			out[i] = s + contMarker
		} else {
			out[i] = s
		}
	}
	return out
}

// Decode re-joins a subword token stream into words.
func Decode(tokens []string) string {
	var b strings.Builder
	for _, t := range tokens {
		b.WriteString(Strip(t))
	}
	return b.String()
}

// Strip returns one token's decoded text — the token with its
// continuation marker removed. It is the allocation-free single-token
// form of Decode, used by the generator's pre-sized detokenizer.
func Strip(tok string) string { return strings.TrimSuffix(tok, contMarker) }

// IsContinued reports whether tok is continued by its successor.
func IsContinued(tok string) bool { return strings.HasSuffix(tok, contMarker) }

// ID looks up a token id.
func (v *Vocab) ID(tok string) (int, bool) {
	id, ok := v.tokens[tok]
	return id, ok
}
