// Package reduce implements the paper's Section 3.5 test-case reduction as
// a hierarchical delta-debugging (ddmin) subsystem: traverse the AST,
// iteratively remove or simplify code structures, and keep each change that
// still reproduces the anomalous behaviour, until a fixpoint.
//
// Unlike a naive greedy reducer, the source is parsed exactly once; every
// candidate is produced by applying an in-place transform to the shared
// tree, printing it, and undoing the transform — so trying a candidate
// costs one print instead of a reparse, and an accepted candidate commits
// by re-applying its transform. Candidates are organised in three tiers:
//
//  1. ddmin chunked statement removal over every statement container
//     (program body, blocks, switch cases), halving the chunk size until
//     single statements;
//  2. structure simplification: if→then/else, loops→body, try→block,
//     label→body;
//  3. expression simplification: call arguments and declaration
//     initialisers become 0, multi-declarator vars split into single
//     declarators (unlocking tier-1 removal), else-branches drop.
//
// The driver evaluates independent candidates speculatively on a bounded
// worker pool (Options.Workers) and commits the first accepted candidate
// in candidate order, so the reduced output is byte-identical for every
// worker count — the same determinism contract as internal/exec's
// scheduler.
//
// Interaction with the resolve-once interpreter: the reducer's shared tree
// is parsed without scope resolution and is never executed — candidates
// are rendered to source and handed to the predicate, which compiles
// (parses and scope-resolves) each candidate afresh; the prepared
// predicates (engines.Diverges, engines.DivergesRunners) share that one
// compiled program between their two executions when parser options
// coincide. The apply/undo transforms therefore never need to invalidate
// or re-resolve annotations: any annotation a transform would stale out
// lives on a tree the evaluator never sees.
package reduce

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"comfort/internal/js/ast"
	"comfort/internal/js/parser"
)

// Predicate reports whether a candidate source still triggers the same
// anomalous behaviour as the original test case. When Options.Workers > 1
// the predicate is called from multiple goroutines concurrently and must
// be safe for that (engine executions are; they share no mutable state).
type Predicate func(src string) bool

// Options parameterises a reduction.
type Options struct {
	// Workers bounds concurrent speculative predicate evaluations;
	// <=0 means GOMAXPROCS. The result is independent of the value.
	Workers int
	// Context cancels the reduction early; the best reduction committed so
	// far is returned. Nil means context.Background().
	Context context.Context
}

// Reduce shrinks src while pred keeps holding, using a single worker (the
// sequential driver). The result is the fixpoint of the three candidate
// tiers.
func Reduce(src string, pred Predicate) string {
	return Parallel(src, pred, Options{Workers: 1})
}

// Parallel shrinks src while pred keeps holding, evaluating independent
// candidates speculatively on a bounded worker pool. The reduced output is
// byte-identical for every worker count.
func Parallel(src string, pred Predicate, opts Options) string {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	prog, err := parser.Parse(src)
	if err != nil || !pred(src) {
		return src
	}
	r := &reducer{
		prog:    prog,
		pred:    pred,
		workers: opts.Workers,
		ctx:     ctx,
		current: src,
	}
	r.run()
	// A committed intermediate (e.g. a var split that never unlocked a
	// removal) can leave the fixpoint no smaller than the input; reduction
	// must never grow its witness, and the input satisfies pred by the
	// check above.
	if len(r.current) >= len(src) {
		return src
	}
	return r.current
}

// reducer holds one reduction's shared state: the single parsed tree (in
// the state of the last committed candidate) and its rendering.
type reducer struct {
	prog    *ast.Program
	pred    Predicate
	workers int
	ctx     context.Context
	// current is the last accepted candidate rendering (initially the
	// original source). Every committed candidate satisfied pred.
	current string
}

// run drives the tiers to a joint fixpoint: as long as any tier commits a
// candidate, all tiers run again (a structure simplification can expose
// new statement removals and vice versa).
func (r *reducer) run() {
	for r.ctx.Err() == nil {
		changed := r.ddminPass()
		changed = r.structurePass() || changed
		changed = r.exprPass() || changed
		if !changed {
			return
		}
	}
}

// ddminPass performs chunked statement removal over all containers: start
// at half the total statement count, retry at the same granularity after
// every accepted removal, and halve the chunk size when no chunk of the
// current size can go.
func (r *reducer) ddminPass() bool {
	any := false
	size := r.totalStmts() / 2
	if size < 1 {
		size = 1
	}
	for r.ctx.Err() == nil {
		if r.commitFirst(r.chunkCandidates(size)) {
			any = true
			if n := r.totalStmts(); size > n && n > 0 {
				size = n
			}
			continue
		}
		if size == 1 {
			return any
		}
		size /= 2
	}
	return any
}

// structurePass unwraps structured statements to their bodies.
func (r *reducer) structurePass() bool {
	any := false
	for r.ctx.Err() == nil && r.commitFirst(r.structureCandidates()) {
		any = true
	}
	return any
}

// exprPass simplifies expressions and splits declarations.
func (r *reducer) exprPass() bool {
	any := false
	for r.ctx.Err() == nil && r.commitFirst(r.exprCandidates()) {
		any = true
	}
	return any
}

// commitFirst renders the candidates in windows, speculatively evaluates
// each window on the worker pool, and commits the accepted candidate with
// the smallest index. It reports whether any candidate was committed.
func (r *reducer) commitFirst(cands []candidate) bool {
	window := r.workers * 4
	if window < 8 {
		window = 8
	}
	for base := 0; base < len(cands); base += window {
		if r.ctx.Err() != nil {
			return false
		}
		end := base + window
		if end > len(cands) {
			end = len(cands)
		}
		specs := make([]string, end-base)
		for i := range specs {
			specs[i] = r.render(cands[base+i])
		}
		if idx := r.firstAccepted(specs); idx >= 0 {
			cands[base+idx].apply()
			r.current = specs[idx]
			return true
		}
	}
	return false
}

// render produces a candidate's source text by applying its transform to
// the shared tree, printing, and undoing — the tree is back in its
// committed state when render returns.
func (r *reducer) render(c candidate) string {
	undo := c.apply()
	out := ast.Print(r.prog)
	undo()
	return out
}

// accept is the full candidate test: the rendering must differ from the
// committed state, reparse (reduction never trades a semantic divergence
// for a syntax error), and still satisfy the predicate.
func (r *reducer) accept(spec string) bool {
	if spec == "" || spec == r.current {
		return false
	}
	if _, err := parser.Parse(spec); err != nil {
		return false
	}
	return r.pred(spec)
}

// firstAccepted returns the smallest index whose spec is accepted, or -1.
// With workers > 1 the specs are evaluated speculatively: indices are
// claimed in order off a shared counter, acceptances lower a shared
// watermark, and a worker stops as soon as its next index cannot beat the
// watermark. The returned index is the global minimum accepted index —
// independent of scheduling — because an index is only ever skipped when a
// strictly smaller accepted index already exists.
func (r *reducer) firstAccepted(specs []string) int {
	if r.workers <= 1 {
		for i, s := range specs {
			if r.ctx.Err() != nil {
				return -1
			}
			if r.accept(s) {
				return i
			}
		}
		return -1
	}
	var best atomic.Int64
	best.Store(int64(len(specs)))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < r.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(specs)) || i >= best.Load() || r.ctx.Err() != nil {
					return
				}
				if r.accept(specs[i]) {
					for {
						b := best.Load()
						if i >= b || best.CompareAndSwap(b, i) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if b := best.Load(); b < int64(len(specs)) {
		return int(b)
	}
	return -1
}
