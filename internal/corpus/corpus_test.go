package corpus

import (
	"testing"

	"comfort/internal/js/lint"
)

// Every corpus program must be syntactically valid and every header must
// open a function the generator can continue.
func TestCorpusProgramsAreValid(t *testing.T) {
	progs := Programs()
	if len(progs) < 40 {
		t.Fatalf("corpus too small: %d programs", len(progs))
	}
	for i, p := range progs {
		if !lint.Valid(p) {
			res := lint.Check(p)
			t.Errorf("corpus program %d invalid: %v\n%s", i, res.Err, p)
		}
	}
}

func TestHeaders(t *testing.T) {
	hs := Headers()
	if len(hs) < 10 {
		t.Fatalf("too few headers: %d", len(hs))
	}
	for _, h := range hs {
		if !lint.Valid(h+" return 1; };") && !lint.Valid(h+" return 1; }") {
			t.Errorf("header %q cannot be completed into a program", h)
		}
	}
}

func TestFragments(t *testing.T) {
	fs := Fragments()
	if len(fs) < 200 {
		t.Fatalf("too few fragments: %d", len(fs))
	}
	parseable := 0
	for _, f := range fs {
		if lint.Valid(f) {
			parseable++
		}
	}
	if parseable < len(fs)/4 {
		t.Errorf("too few standalone-parseable fragments: %d/%d", parseable, len(fs))
	}
}
