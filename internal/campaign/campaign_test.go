package campaign

import (
	"context"
	"strings"
	"testing"
	"time"

	"comfort/internal/engines"
	"comfort/internal/fuzzers"
)

// TestComfortCampaignFindsSeededBugs runs a small COMFORT campaign over the
// bug-richest testbeds and checks that it discovers seeded defects across
// several engines — the end-to-end property behind every table.
func TestComfortCampaignFindsSeededBugs(t *testing.T) {
	res := Run(Config{
		Fuzzer:   fuzzers.NewComfort(),
		Testbeds: figure8Testbeds(),
		Cases:    300,
		Seed:     1,
	})
	if len(res.Found) < 5 {
		t.Fatalf("expected at least 5 seeded defects found, got %d", len(res.Found))
	}
	enginesHit := map[string]bool{}
	for _, f := range res.Found {
		enginesHit[f.Defect.Engine] = true
	}
	if len(enginesHit) < 3 {
		t.Errorf("expected findings across >= 3 engines, got %v", enginesHit)
	}
	t.Logf("found %d defects across %d engines (dups filtered: %d)",
		len(res.Found), len(enginesHit), res.DuplicatesFiltered)
}

// TestCampaignWorkerCountIndependence pins the streaming pipeline's
// determinism contract: at a fixed seed, the findings and the verdict
// histogram are identical for a serial and a wide worker pool.
func TestCampaignWorkerCountIndependence(t *testing.T) {
	run := func(workers int) *Result {
		return Run(Config{
			Fuzzer:   fuzzers.NewComfort(),
			Testbeds: engines.Testbeds(),
			Cases:    80,
			Seed:     2021,
			Workers:  workers,
		})
	}
	serial := run(1)
	wide := run(8)
	if serial.CasesRun != wide.CasesRun || serial.Executed != wide.Executed {
		t.Fatalf("case/execution counts differ: %d/%d vs %d/%d",
			serial.CasesRun, serial.Executed, wide.CasesRun, wide.Executed)
	}
	if len(serial.Found) != len(wide.Found) {
		t.Fatalf("findings differ: %d (workers=1) vs %d (workers=8)",
			len(serial.Found), len(wide.Found))
	}
	for id, f := range serial.Found {
		g, ok := wide.Found[id]
		if !ok {
			t.Errorf("finding %s missing at workers=8", id)
			continue
		}
		if f.TestCase != g.TestCase || f.Verdict != g.Verdict || f.Engine != g.Engine {
			t.Errorf("finding %s attributed differently across worker counts", id)
		}
	}
	for v, n := range serial.Verdicts {
		if wide.Verdicts[v] != n {
			t.Errorf("verdict %s: %d (workers=1) vs %d (workers=8)", v, n, wide.Verdicts[v])
		}
	}
	if serial.DuplicatesFiltered != wide.DuplicatesFiltered {
		t.Errorf("duplicates filtered differ: %d vs %d",
			serial.DuplicatesFiltered, wide.DuplicatesFiltered)
	}
}

// TestCampaignCancellation pins early termination: cancelling mid-campaign
// returns promptly with partial accounting and without deadlock.
func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan *Result, 1)
	go func() {
		done <- Run(Config{
			Fuzzer:   fuzzers.NewComfort(),
			Testbeds: engines.Testbeds(),
			Cases:    100000, // far more than will run before cancellation
			Seed:     3,
			Workers:  4,
			Context:  ctx,
			Progress: func(n, total int) {
				if n == 5 {
					cancel()
				}
			},
		})
	}()
	select {
	case res := <-done:
		if res.CasesRun >= 100000 {
			t.Errorf("campaign ran to completion despite cancellation (%d cases)", res.CasesRun)
		}
		if res.CasesRun < 5 {
			t.Errorf("campaign accounted only %d cases before returning", res.CasesRun)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("cancelled campaign did not return (deadlock?)")
	}
}

// TestCampaignProgressStreams checks that the progress callback fires once
// per case, in order.
func TestCampaignProgressStreams(t *testing.T) {
	var calls []int
	Run(Config{
		Fuzzer:   fuzzers.NewDIE(),
		Testbeds: figure8Testbeds()[:4],
		Cases:    20,
		Seed:     2,
		Workers:  4,
		Progress: func(done, total int) {
			if total != 20 {
				t.Errorf("progress total = %d, want 20", total)
			}
			calls = append(calls, done)
		},
	})
	if len(calls) != 20 {
		t.Fatalf("progress fired %d times, want 20", len(calls))
	}
	for i, n := range calls {
		if n != i+1 {
			t.Fatalf("progress out of order: call %d reported %d", i, n)
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	cfg := Config{
		Fuzzer:   fuzzers.NewDIE(),
		Testbeds: figure8Testbeds()[:6],
		Cases:    60,
		Seed:     9,
	}
	a := Run(cfg)
	b := Run(cfg)
	if len(a.Found) != len(b.Found) {
		t.Fatalf("campaign not deterministic: %d vs %d findings", len(a.Found), len(b.Found))
	}
	for id := range a.Found {
		if _, ok := b.Found[id]; !ok {
			t.Errorf("finding %s missing from second run", id)
		}
	}
}

func TestWitnessReplayFindsEveryDefect(t *testing.T) {
	// Replaying the catalog's own witnesses through the differential
	// pipeline must rediscover every defect — the completeness bound of
	// the harness (a fuzzer can never find more than the catalog).
	found := map[string]bool{}
	for _, e := range engines.All() {
		for _, v := range e.Versions {
			for _, d := range engines.ActiveDefects(v) {
				if found[d.ID] || d.AttrVersion != v.Name {
					continue
				}
				tb := engines.Testbed{Version: v, Strict: d.WitnessStrict}
				attr := engines.Attribute(d.Witness, tb, engines.RunOptions{Fuel: 500000, Seed: 1})
				for _, ad := range attr {
					found[ad.ID] = true
				}
			}
		}
	}
	if len(found) != len(engines.Catalog()) {
		missing := []string{}
		for _, d := range engines.Catalog() {
			if !found[d.ID] {
				missing = append(missing, d.ID)
			}
		}
		t.Errorf("witness replay found %d/%d defects; missing: %v",
			len(found), len(engines.Catalog()), missing)
	}
}

func TestTablesRender(t *testing.T) {
	found := engines.Catalog()[:20]
	var fd []*Defect
	fd = append(fd, found...)
	for name, table := range map[string]string{
		"t1": Table1(), "t2": Table2(fd), "t3": Table3(fd),
		"t4": Table4(fd), "t5": Table5(fd), "f7": Figure7(fd),
	} {
		if len(strings.Split(table, "\n")) < 4 {
			t.Errorf("table %s suspiciously short:\n%s", name, table)
		}
	}
	if !strings.Contains(Table2(fd), "158") {
		t.Error("Table 2 must contain the paper total 158")
	}
}
