// Package regex implements the regular-expression engine used by the JS
// runtime: an ECMAScript-flavoured backtracking matcher supporting character
// classes, alternation, greedy/lazy quantifiers, capturing and non-capturing
// groups, anchors, word boundaries, backreferences, and the i/m/s flags.
// The g and y flags are interpreted by the caller via lastIndex.
//
// The engine operates on runes (Unicode code points); this substitutes Go's
// natural string representation for the UTF-16 code-unit semantics of real
// engines, which is observationally identical for the BMP subset the fuzzer
// generates.
package regex

import (
	"fmt"
	"strings"
	"unicode"
)

// SyntaxError reports an invalid pattern.
type SyntaxError struct{ Msg string }

func (e *SyntaxError) Error() string {
	return "Invalid regular expression: " + e.Msg
}

// Regexp is a compiled pattern.
type Regexp struct {
	Source     string
	Flags      string
	IgnoreCase bool
	Multiline  bool
	DotAll     bool
	Global     bool
	Sticky     bool
	NumGroups  int // number of capturing groups (excluding group 0)
	root       node
}

// Match holds capture-group rune index pairs for a successful match.
// Groups[0] is the whole match; unmatched groups are [-1,-1].
type Match struct {
	Groups [][2]int
	Input  []rune
}

// GroupString returns the text of capture group i, or "" if unmatched.
func (m *Match) GroupString(i int) string {
	if i >= len(m.Groups) || m.Groups[i][0] < 0 {
		return ""
	}
	return string(m.Input[m.Groups[i][0]:m.Groups[i][1]])
}

// GroupMatched reports whether capture group i participated in the match.
func (m *Match) GroupMatched(i int) bool {
	return i < len(m.Groups) && m.Groups[i][0] >= 0
}

// Compile parses pattern with the given flag string.
func Compile(pattern, flags string) (*Regexp, error) {
	re := &Regexp{Source: pattern, Flags: flags}
	for _, f := range flags {
		switch f {
		case 'i':
			re.IgnoreCase = true
		case 'm':
			re.Multiline = true
		case 's':
			re.DotAll = true
		case 'g':
			re.Global = true
		case 'y':
			re.Sticky = true
		case 'u':
			// Unicode mode: rune semantics are already the default here.
		default:
			return nil, &SyntaxError{Msg: fmt.Sprintf("invalid flag %q", f)}
		}
	}
	p := &patternParser{src: []rune(pattern), re: re}
	root, err := p.parseAlternation()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.src) {
		return nil, &SyntaxError{Msg: fmt.Sprintf("unmatched %q", p.src[p.pos])}
	}
	re.root = root
	return re, nil
}

// budget bounds backtracking work per match attempt so pathological
// patterns terminate deterministically.
const budget = 2_000_000

// ErrBudget is reported when a match attempt exceeds the backtracking
// budget; engines surface it as a timeout.
var ErrBudget = fmt.Errorf("regular expression too complex")

// Exec finds the first match at or after rune index start; nil means no
// match. With the sticky flag the match must begin exactly at start.
func (re *Regexp) Exec(input string, start int) (*Match, error) {
	runes := []rune(input)
	if start < 0 {
		start = 0
	}
	for at := start; at <= len(runes); at++ {
		m := &machine{re: re, input: runes, steps: budget}
		m.groups = make([][2]int, re.NumGroups+1)
		for i := range m.groups {
			m.groups[i] = [2]int{-1, -1}
		}
		m.groups[0][0] = at
		ok := re.root.match(m, at, func(end int) bool {
			m.groups[0][1] = end
			return true
		})
		if m.steps <= 0 {
			return nil, ErrBudget
		}
		if ok {
			return &Match{Groups: m.groups, Input: runes}, nil
		}
		if re.Sticky {
			break
		}
	}
	return nil, nil
}

type machine struct {
	re     *Regexp
	input  []rune
	groups [][2]int
	steps  int
}

func (m *machine) step() bool {
	m.steps--
	return m.steps > 0
}

func (m *machine) fold(r rune) rune {
	if m.re.IgnoreCase {
		return unicode.ToLower(unicode.ToUpper(r))
	}
	return r
}

type cont func(pos int) bool

type node interface {
	match(m *machine, pos int, k cont) bool
}

// ---------- Node types ----------

type seqNode struct{ items []node }

func (n *seqNode) match(m *machine, pos int, k cont) bool {
	if !m.step() {
		return false
	}
	var run func(i, pos int) bool
	run = func(i, pos int) bool {
		if i == len(n.items) {
			return k(pos)
		}
		return n.items[i].match(m, pos, func(next int) bool {
			return run(i+1, next)
		})
	}
	return run(0, pos)
}

type altNode struct{ opts []node }

func (n *altNode) match(m *machine, pos int, k cont) bool {
	if !m.step() {
		return false
	}
	for _, o := range n.opts {
		if o.match(m, pos, k) {
			return true
		}
		if m.steps <= 0 {
			return false
		}
	}
	return false
}

type charNode struct{ r rune }

func (n *charNode) match(m *machine, pos int, k cont) bool {
	if !m.step() {
		return false
	}
	if pos >= len(m.input) {
		return false
	}
	if m.fold(m.input[pos]) != m.fold(n.r) {
		return false
	}
	return k(pos + 1)
}

type dotNode struct{}

func (n *dotNode) match(m *machine, pos int, k cont) bool {
	if !m.step() {
		return false
	}
	if pos >= len(m.input) {
		return false
	}
	r := m.input[pos]
	if !m.re.DotAll && (r == '\n' || r == '\r' || r == 0x2028 || r == 0x2029) {
		return false
	}
	return k(pos + 1)
}

// classItem is one member of a character class.
type classItem struct {
	lo, hi rune // inclusive range; single chars have lo==hi
	kind   byte // 0: range, 'd','D','w','W','s','S' for builtin classes
}

type classNode struct {
	items  []classItem
	negate bool
}

func (n *classNode) contains(m *machine, r rune) bool {
	in := false
	for _, it := range n.items {
		switch it.kind {
		case 0:
			if m.re.IgnoreCase {
				fr := m.fold(r)
				if (m.fold(it.lo) <= fr && fr <= m.fold(it.hi)) || (it.lo <= r && r <= it.hi) {
					in = true
				}
			} else if it.lo <= r && r <= it.hi {
				in = true
			}
		case 'd':
			in = in || isDigit(r)
		case 'D':
			in = in || !isDigit(r)
		case 'w':
			in = in || isWord(r)
		case 'W':
			in = in || !isWord(r)
		case 's':
			in = in || isSpace(r)
		case 'S':
			in = in || !isSpace(r)
		}
		if in {
			break
		}
	}
	if n.negate {
		return !in
	}
	return in
}

func (n *classNode) match(m *machine, pos int, k cont) bool {
	if !m.step() {
		return false
	}
	if pos >= len(m.input) {
		return false
	}
	if !n.contains(m, m.input[pos]) {
		return false
	}
	return k(pos + 1)
}

type anchorNode struct{ kind byte } // '^', '$', 'b', 'B'

func (n *anchorNode) match(m *machine, pos int, k cont) bool {
	if !m.step() {
		return false
	}
	switch n.kind {
	case '^':
		if pos == 0 || (m.re.Multiline && pos > 0 && isLineTerm(m.input[pos-1])) {
			return k(pos)
		}
		return false
	case '$':
		if pos == len(m.input) || (m.re.Multiline && isLineTerm(m.input[pos])) {
			return k(pos)
		}
		return false
	case 'b', 'B':
		before := pos > 0 && isWord(m.input[pos-1])
		after := pos < len(m.input) && isWord(m.input[pos])
		atBoundary := before != after
		if (n.kind == 'b') == atBoundary {
			return k(pos)
		}
		return false
	}
	return false
}

type groupNode struct {
	idx   int // 0 for non-capturing
	inner node
}

func (n *groupNode) match(m *machine, pos int, k cont) bool {
	if !m.step() {
		return false
	}
	if n.idx == 0 {
		return n.inner.match(m, pos, k)
	}
	saved := m.groups[n.idx]
	ok := n.inner.match(m, pos, func(end int) bool {
		prev := m.groups[n.idx]
		m.groups[n.idx] = [2]int{pos, end}
		if k(end) {
			return true
		}
		m.groups[n.idx] = prev
		return false
	})
	if !ok {
		m.groups[n.idx] = saved
	}
	return ok
}

type backrefNode struct{ idx int }

func (n *backrefNode) match(m *machine, pos int, k cont) bool {
	if !m.step() {
		return false
	}
	if n.idx >= len(m.groups) {
		return false
	}
	g := m.groups[n.idx]
	if g[0] < 0 {
		// Unmatched group backreference matches the empty string.
		return k(pos)
	}
	length := g[1] - g[0]
	if pos+length > len(m.input) {
		return false
	}
	for i := 0; i < length; i++ {
		if m.fold(m.input[g[0]+i]) != m.fold(m.input[pos+i]) {
			return false
		}
	}
	return k(pos + length)
}

type repeatNode struct {
	inner    node
	min, max int // max = -1 means unbounded
	lazy     bool
}

func (n *repeatNode) match(m *machine, pos int, k cont) bool {
	if !m.step() {
		return false
	}
	var rec func(count, pos int) bool
	rec = func(count, pos int) bool {
		if m.steps <= 0 {
			return false
		}
		canMore := n.max < 0 || count < n.max
		tryMore := func() bool {
			if !canMore {
				return false
			}
			return n.inner.match(m, pos, func(end int) bool {
				if end == pos && count >= n.min {
					// Empty iteration past the minimum: stop to avoid
					// infinite loops (ECMAScript repetition semantics).
					return false
				}
				return rec(count+1, end)
			})
		}
		tryDone := func() bool {
			if count < n.min {
				return false
			}
			return k(pos)
		}
		if n.lazy {
			return tryDone() || tryMore()
		}
		return tryMore() || tryDone()
	}
	return rec(0, pos)
}

type lookaheadNode struct {
	inner  node
	negate bool
}

func (n *lookaheadNode) match(m *machine, pos int, k cont) bool {
	if !m.step() {
		return false
	}
	saved := make([][2]int, len(m.groups))
	copy(saved, m.groups)
	ok := n.inner.match(m, pos, func(int) bool { return true })
	if n.negate {
		copy(m.groups, saved)
		if ok {
			return false
		}
		return k(pos)
	}
	if !ok {
		copy(m.groups, saved)
		return false
	}
	return k(pos)
}

type emptyNode struct{}

func (emptyNode) match(m *machine, pos int, k cont) bool { return k(pos) }

// ---------- Pattern parser ----------

type patternParser struct {
	src []rune
	pos int
	re  *Regexp
}

func (p *patternParser) peek() rune {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return -1
}

func (p *patternParser) parseAlternation() (node, error) {
	var opts []node
	seq, err := p.parseSequence()
	if err != nil {
		return nil, err
	}
	opts = append(opts, seq)
	for p.peek() == '|' {
		p.pos++
		seq, err := p.parseSequence()
		if err != nil {
			return nil, err
		}
		opts = append(opts, seq)
	}
	if len(opts) == 1 {
		return opts[0], nil
	}
	return &altNode{opts: opts}, nil
}

func (p *patternParser) parseSequence() (node, error) {
	var items []node
	for p.pos < len(p.src) {
		r := p.peek()
		if r == '|' || r == ')' {
			break
		}
		item, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		item, err = p.parseQuantifier(item)
		if err != nil {
			return nil, err
		}
		items = append(items, item)
	}
	if len(items) == 0 {
		return emptyNode{}, nil
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return &seqNode{items: items}, nil
}

func (p *patternParser) parseTerm() (node, error) {
	r := p.src[p.pos]
	switch r {
	case '^', '$':
		p.pos++
		return &anchorNode{kind: byte(r)}, nil
	case '.':
		p.pos++
		return &dotNode{}, nil
	case '(':
		return p.parseGroup()
	case '[':
		return p.parseClass()
	case '\\':
		return p.parseEscape()
	case '*', '+', '?':
		return nil, &SyntaxError{Msg: "nothing to repeat"}
	case '{':
		// A '{' that does not start a valid quantifier is a literal.
		p.pos++
		return &charNode{r: '{'}, nil
	default:
		p.pos++
		return &charNode{r: r}, nil
	}
}

func (p *patternParser) parseGroup() (node, error) {
	p.pos++ // '('
	capture := true
	negate := false
	look := false
	if p.peek() == '?' {
		p.pos++
		switch p.peek() {
		case ':':
			p.pos++
			capture = false
		case '=':
			p.pos++
			look = true
		case '!':
			p.pos++
			look = true
			negate = true
		default:
			return nil, &SyntaxError{Msg: "invalid group"}
		}
	}
	idx := 0
	if capture && !look {
		p.re.NumGroups++
		idx = p.re.NumGroups
	}
	inner, err := p.parseAlternation()
	if err != nil {
		return nil, err
	}
	if p.peek() != ')' {
		return nil, &SyntaxError{Msg: "missing )"}
	}
	p.pos++
	if look {
		return &lookaheadNode{inner: inner, negate: negate}, nil
	}
	return &groupNode{idx: idx, inner: inner}, nil
}

func (p *patternParser) parseClass() (node, error) {
	p.pos++ // '['
	n := &classNode{}
	if p.peek() == '^' {
		n.negate = true
		p.pos++
	}
	first := true
	for {
		if p.pos >= len(p.src) {
			return nil, &SyntaxError{Msg: "unterminated character class"}
		}
		r := p.src[p.pos]
		if r == ']' && !first {
			p.pos++
			return n, nil
		}
		first = false
		var lo rune
		var kind byte
		if r == '\\' {
			var err error
			lo, kind, err = p.parseClassEscape()
			if err != nil {
				return nil, err
			}
		} else {
			lo = r
			p.pos++
		}
		if kind != 0 {
			n.items = append(n.items, classItem{kind: kind})
			continue
		}
		// Possible range: a-z.
		if p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++ // '-'
			r2 := p.src[p.pos]
			var hi rune
			if r2 == '\\' {
				var k2 byte
				var err error
				hi, k2, err = p.parseClassEscape()
				if err != nil {
					return nil, err
				}
				if k2 != 0 {
					// e.g. [a-\d] — treat '-' literally per Annex B.
					n.items = append(n.items,
						classItem{lo: lo, hi: lo},
						classItem{lo: '-', hi: '-'},
						classItem{kind: k2})
					continue
				}
			} else {
				hi = r2
				p.pos++
			}
			if hi < lo {
				return nil, &SyntaxError{Msg: "range out of order in character class"}
			}
			n.items = append(n.items, classItem{lo: lo, hi: hi})
			continue
		}
		n.items = append(n.items, classItem{lo: lo, hi: lo})
	}
}

// parseClassEscape handles an escape inside a character class; kind != 0
// means a builtin class shorthand.
func (p *patternParser) parseClassEscape() (rune, byte, error) {
	p.pos++ // '\'
	if p.pos >= len(p.src) {
		return 0, 0, &SyntaxError{Msg: "trailing backslash"}
	}
	r := p.src[p.pos]
	p.pos++
	switch r {
	case 'd', 'D', 'w', 'W', 's', 'S':
		return 0, byte(r), nil
	case 'n':
		return '\n', 0, nil
	case 't':
		return '\t', 0, nil
	case 'r':
		return '\r', 0, nil
	case 'f':
		return '\f', 0, nil
	case 'v':
		return '\v', 0, nil
	case 'b':
		return '\b', 0, nil
	case '0':
		return 0, 0, nil
	case 'x':
		return p.hexEscape(2)
	case 'u':
		return p.hexEscape(4)
	case 'c':
		if p.pos < len(p.src) && isASCIILetter(p.src[p.pos]) {
			c := p.src[p.pos]
			p.pos++
			return c % 32, 0, nil
		}
		return '\\', 0, nil
	default:
		return r, 0, nil
	}
}

func (p *patternParser) hexEscape(n int) (rune, byte, error) {
	v := rune(0)
	if p.pos+n > len(p.src) {
		return 0, 0, &SyntaxError{Msg: "invalid escape"}
	}
	for i := 0; i < n; i++ {
		d := hexDigit(p.src[p.pos])
		if d < 0 {
			return 0, 0, &SyntaxError{Msg: "invalid escape"}
		}
		v = v*16 + rune(d)
		p.pos++
	}
	return v, 0, nil
}

func (p *patternParser) parseEscape() (node, error) {
	p.pos++ // '\'
	if p.pos >= len(p.src) {
		return nil, &SyntaxError{Msg: "trailing backslash"}
	}
	r := p.src[p.pos]
	switch r {
	case 'd', 'D', 'w', 'W', 's', 'S':
		p.pos++
		return &classNode{items: []classItem{{kind: byte(r)}}}, nil
	case 'b', 'B':
		p.pos++
		return &anchorNode{kind: byte(r)}, nil
	case '1', '2', '3', '4', '5', '6', '7', '8', '9':
		idx := 0
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			idx = idx*10 + int(p.src[p.pos]-'0')
			p.pos++
			if idx > 99 {
				break
			}
		}
		return &backrefNode{idx: idx}, nil
	default:
		// Re-position at the backslash: parseClassEscape consumes it.
		p.pos--
		lo, kind, err := p.parseClassEscape()
		if err != nil {
			return nil, err
		}
		if kind != 0 {
			return &classNode{items: []classItem{{kind: kind}}}, nil
		}
		return &charNode{r: lo}, nil
	}
}

func (p *patternParser) parseQuantifier(inner node) (node, error) {
	if p.pos >= len(p.src) {
		return inner, nil
	}
	var min, max int
	switch p.src[p.pos] {
	case '*':
		min, max = 0, -1
		p.pos++
	case '+':
		min, max = 1, -1
		p.pos++
	case '?':
		min, max = 0, 1
		p.pos++
	case '{':
		// {n}, {n,}, {n,m} — otherwise literal.
		save := p.pos
		p.pos++
		n1, ok := p.parseInt()
		if !ok {
			p.pos = save
			return inner, nil
		}
		min, max = n1, n1
		if p.peek() == ',' {
			p.pos++
			if p.peek() == '}' {
				max = -1
			} else {
				n2, ok := p.parseInt()
				if !ok {
					p.pos = save
					return inner, nil
				}
				max = n2
			}
		}
		if p.peek() != '}' {
			p.pos = save
			return inner, nil
		}
		p.pos++
		if max >= 0 && max < min {
			return nil, &SyntaxError{Msg: "numbers out of order in {} quantifier"}
		}
	default:
		return inner, nil
	}
	lazy := false
	if p.peek() == '?' {
		lazy = true
		p.pos++
	}
	switch inner.(type) {
	case *anchorNode:
		return nil, &SyntaxError{Msg: "nothing to repeat"}
	}
	return &repeatNode{inner: inner, min: min, max: max, lazy: lazy}, nil
}

func (p *patternParser) parseInt() (int, bool) {
	start := p.pos
	v := 0
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		v = v*10 + int(p.src[p.pos]-'0')
		p.pos++
		if v > 1<<20 {
			return 0, false
		}
	}
	return v, p.pos > start
}

// ---------- Character predicates ----------

func isDigit(r rune) bool { return r >= '0' && r <= '9' }

func isWord(r rune) bool {
	return r == '_' || isDigit(r) || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

func isSpace(r rune) bool {
	switch r {
	case ' ', '\t', '\n', '\r', '\v', '\f', 0x00a0, 0x2028, 0x2029, 0xfeff:
		return true
	}
	return unicode.IsSpace(r)
}

func isLineTerm(r rune) bool {
	return r == '\n' || r == '\r' || r == 0x2028 || r == 0x2029
}

func isASCIILetter(r rune) bool {
	return (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

func hexDigit(r rune) int {
	switch {
	case r >= '0' && r <= '9':
		return int(r - '0')
	case r >= 'a' && r <= 'f':
		return int(r-'a') + 10
	case r >= 'A' && r <= 'F':
		return int(r-'A') + 10
	}
	return -1
}

// ReplaceAll performs a global search-and-replace, expanding $1..$9, $&, $`,
// $' and $$ in repl. It is used by String.prototype.replace.
func (re *Regexp) ReplaceAll(input, repl string, global bool) (string, error) {
	var b strings.Builder
	runes := []rune(input)
	at := 0
	for at <= len(runes) {
		m, err := re.Exec(input, at)
		if err != nil {
			return "", err
		}
		if m == nil {
			break
		}
		start, end := m.Groups[0][0], m.Groups[0][1]
		b.WriteString(string(runes[at:start]))
		b.WriteString(ExpandReplacement(repl, m))
		if end == start {
			if start < len(runes) {
				b.WriteRune(runes[start])
			}
			at = start + 1
		} else {
			at = end
		}
		if !global {
			break
		}
	}
	if at <= len(runes) {
		b.WriteString(string(runes[at:]))
	}
	return b.String(), nil
}

// ExpandReplacement expands $-patterns in a replacement template against a
// match, per ECMA-262 GetSubstitution.
func ExpandReplacement(repl string, m *Match) string {
	var b strings.Builder
	r := []rune(repl)
	for i := 0; i < len(r); i++ {
		if r[i] != '$' || i+1 >= len(r) {
			b.WriteRune(r[i])
			continue
		}
		next := r[i+1]
		switch {
		case next == '$':
			b.WriteByte('$')
			i++
		case next == '&':
			b.WriteString(m.GroupString(0))
			i++
		case next == '`':
			b.WriteString(string(m.Input[:m.Groups[0][0]]))
			i++
		case next == '\'':
			b.WriteString(string(m.Input[m.Groups[0][1]:]))
			i++
		case next >= '0' && next <= '9':
			idx := int(next - '0')
			consumed := 1
			if i+2 < len(r) && r[i+2] >= '0' && r[i+2] <= '9' {
				two := idx*10 + int(r[i+2]-'0')
				if two <= len(m.Groups)-1 {
					idx = two
					consumed = 2
				}
			}
			if idx >= 1 && idx <= len(m.Groups)-1 {
				b.WriteString(m.GroupString(idx))
				i += consumed
			} else {
				b.WriteRune(r[i])
			}
		default:
			b.WriteRune(r[i])
		}
	}
	return b.String()
}
