// Package cov is the Istanbul substitute: it computes the statement,
// function and branch coverage of a JS program execution, using the node
// IDs the parser assigns and the raw hit sets the interpreter records.
package cov

import (
	"comfort/internal/js/ast"
	"comfort/internal/js/interp"
)

// Profile summarises one program's coverage totals.
type Profile struct {
	StmtTotal, StmtHit     int
	FuncTotal, FuncHit     int
	BranchTotal, BranchHit int
}

// StmtRate returns statement coverage in [0,1] (1 when there is nothing to
// cover, matching Istanbul's convention).
func (p Profile) StmtRate() float64 { return rate(p.StmtHit, p.StmtTotal) }

// FuncRate returns function coverage.
func (p Profile) FuncRate() float64 { return rate(p.FuncHit, p.FuncTotal) }

// BranchRate returns branch coverage.
func (p Profile) BranchRate() float64 { return rate(p.BranchHit, p.BranchTotal) }

func rate(hit, total int) float64 {
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}

// Measure combines the statically countable coverage points of prog with
// the dynamic hit sets from a run.
func Measure(prog *ast.Program, c *interp.Coverage) Profile {
	var p Profile
	stmtIDs := map[int]bool{}
	funcIDs := map[int]bool{}
	branchArms := map[[2]int]bool{}

	ast.Walk(prog, func(n ast.Node) bool {
		switch v := n.(type) {
		case ast.Stmt:
			if _, isProg := n.(*ast.Program); !isProg {
				stmtIDs[n.ID()] = true
			}
			switch s := v.(type) {
			case *ast.IfStmt:
				branchArms[[2]int{s.ID(), 0}] = true
				branchArms[[2]int{s.ID(), 1}] = true
			case *ast.WhileStmt:
				branchArms[[2]int{s.ID(), 0}] = true
				branchArms[[2]int{s.ID(), 1}] = true
			case *ast.ForStmt:
				if s.Cond != nil {
					branchArms[[2]int{s.ID(), 0}] = true
					branchArms[[2]int{s.ID(), 1}] = true
				}
			case *ast.SwitchStmt:
				for i := range s.Cases {
					branchArms[[2]int{s.ID(), i}] = true
				}
			}
		case *ast.FuncLit:
			if v.Body != nil {
				funcIDs[v.ID()] = true
			}
		case *ast.CondExpr:
			branchArms[[2]int{v.ID(), 0}] = true
			branchArms[[2]int{v.ID(), 1}] = true
		case *ast.LogicalExpr:
			branchArms[[2]int{v.ID(), 0}] = true
			branchArms[[2]int{v.ID(), 1}] = true
		}
		return true
	})

	p.StmtTotal = len(stmtIDs)
	p.FuncTotal = len(funcIDs)
	p.BranchTotal = len(branchArms)
	if c == nil {
		return p
	}
	for id := range c.Stmts {
		if stmtIDs[id] {
			p.StmtHit++
		}
	}
	for id := range c.Funcs {
		if funcIDs[id] {
			p.FuncHit++
		}
	}
	for arm := range c.Branches {
		if branchArms[arm] {
			p.BranchHit++
		}
	}
	return p
}

// Merge accumulates b into a (summing totals and hits across programs, the
// way the paper averages per-fuzzer coverage).
func Merge(a, b Profile) Profile {
	return Profile{
		StmtTotal:   a.StmtTotal + b.StmtTotal,
		StmtHit:     a.StmtHit + b.StmtHit,
		FuncTotal:   a.FuncTotal + b.FuncTotal,
		FuncHit:     a.FuncHit + b.FuncHit,
		BranchTotal: a.BranchTotal + b.BranchTotal,
		BranchHit:   a.BranchHit + b.BranchHit,
	}
}
