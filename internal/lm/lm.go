// Package lm assembles the program generator of the paper's Section 3.2:
// code tokenisation, BPE subword encoding, a long-context language model
// (the GPT-2 substitute), and top-k sampling with the paper's termination
// conditions (bracket balance, <EOF>, 5,000-token cap).
package lm

import (
	"math/rand"
	"strings"

	"comfort/internal/lm/bpe"
	"comfort/internal/lm/ngram"
)

// Arch selects the model family; the architectural difference is context
// length, which is exactly the property the paper contrasts.
type Arch int

// Model architectures.
const (
	// ArchGPT2 is the long-context Transformer substitute (order 8).
	ArchGPT2 Arch = iota
	// ArchLSTM is the short-context RNN substitute used by the DeepSmith
	// and Montage baselines (order 2).
	ArchLSTM
)

func (a Arch) order() int {
	if a == ArchLSTM {
		return 2
	}
	return 8
}

func (a Arch) String() string {
	if a == ArchLSTM {
		return "lstm"
	}
	return "gpt2"
}

// Generator is a trained code generator. Generation runs on the frozen
// token-ID sampler by default (interned int32 vocabulary, precomputed
// per-context candidate lists, zero allocations per token); the map-backed
// model is retained as the differential oracle's second implementation and
// drives generation when Config.DisableFrozenLM is set — the knob
// mirroring the interpreter's DisableResolve.
type Generator struct {
	arch   Arch
	vocab  *bpe.Vocab
	model  *ngram.Model
	frozen *ngram.Frozen // nil when Config.DisableFrozenLM
	detok  []string      // token ID → decoded text (continuation marker stripped)
	lbrace int32         // interned "{", or -1
	rbrace int32         // interned "}", or -1
	// wordSubs memoises EncodeWord for every word seen while training
	// (corpus and headers), so priming a generation does not re-run the
	// merge rules per word. Read-only after Train — generator shards
	// consult it concurrently; unseen words fall back to EncodeWord
	// without populating it.
	wordSubs map[string][]string
	// primed precompiles each seed header's tokenised/interned prefix and
	// brace state once at train time (read-only afterwards), so the frozen
	// hot path starts a generation with one map hit and one ID copy.
	primed  map[string]*primedHeader
	headers []string
	topK    int
	// MaxTokens is the generation cap (the paper's 5,000-word limit).
	MaxTokens int
}

// Config parameterises training.
type Config struct {
	Arch      Arch
	TopK      int // 0 = the paper's k=10
	NumMerges int // BPE merges; 0 = 400
	// DisableFrozenLM keeps generation on the map-backed string sampler
	// instead of the frozen token-ID model — the oracle/ablation knob;
	// both paths are byte-identical for a fixed seed (pinned by test).
	DisableFrozenLM bool
}

// Train builds a generator from a corpus of programs plus seed headers.
func Train(programs, headers []string, cfg Config) *Generator {
	if cfg.TopK == 0 {
		cfg.TopK = 10
	}
	if cfg.NumMerges == 0 {
		cfg.NumMerges = 400
	}
	// Collect identifier-like words for the BPE vocabulary.
	var words []string
	for _, p := range programs {
		for _, tok := range TokenizeCode(p) {
			if isWordToken(tok) {
				words = append(words, tok)
			}
		}
	}
	vocab := bpe.Train(words, cfg.NumMerges)
	model := ngram.New(cfg.Arch.order())
	memo := map[string][]string{}
	for _, p := range programs {
		stream := encodeWith(vocab, memo, TokenizeCode(p), true)
		stream = append(stream, "<EOF>")
		model.Train(stream)
	}
	// Pre-warm the memo with the seed headers so generation priming never
	// misses on its own vocabulary.
	for _, h := range headers {
		encodeWith(vocab, memo, TokenizeCode(h), true)
	}
	g := &Generator{
		arch:      cfg.Arch,
		vocab:     vocab,
		model:     model,
		wordSubs:  memo,
		headers:   headers,
		topK:      cfg.TopK,
		MaxTokens: 5000,
	}
	if !cfg.DisableFrozenLM {
		g.frozen = model.Freeze()
		g.detok = make([]string, g.frozen.VocabSize())
		for id := range g.detok {
			g.detok[id] = bpe.Strip(g.frozen.Token(int32(id)))
		}
		g.lbrace = g.frozen.TokenID("{")
		g.rbrace = g.frozen.TokenID("}")
		g.primed = make(map[string]*primedHeader, len(headers))
		for _, h := range headers {
			if _, ok := g.primed[h]; !ok {
				g.primed[h] = g.primeHeader(h)
			}
		}
	}
	return g
}

// primedHeader is one seed header's precompiled generation prefix.
type primedHeader struct {
	toks     []string
	ids      []int32
	depth    int
	sawBrace bool
}

// primeHeader tokenises, BPE-encodes and interns one header.
func (g *Generator) primeHeader(header string) *primedHeader {
	p := &primedHeader{
		toks:     g.encodeTokens(TokenizeCode(header)),
		sawBrace: strings.Contains(header, "{"),
	}
	p.ids = make([]int32, len(p.toks))
	for i, tok := range p.toks {
		p.ids[i] = g.frozen.TokenID(tok)
		switch tok {
		case "{":
			p.depth++
		case "}":
			p.depth--
		}
	}
	return p
}

// FrozenLM reports whether generation runs on the frozen token-ID model.
func (g *Generator) FrozenLM() bool { return g.frozen != nil }

// Vocab exposes the trained BPE vocabulary.
func (g *Generator) Vocab() *bpe.Vocab { return g.vocab }

// Contexts reports the number of learned generation contexts.
func (g *Generator) Contexts() int { return g.model.Contexts() }

// Generate produces one synthetic program, primed with a random seed
// header. Generation stops when the braces opened by the header are
// balanced again, when the model emits <EOF>, or at the token cap.
func (g *Generator) Generate(rng *rand.Rand) string {
	header := g.headers[rng.Intn(len(g.headers))]
	return g.GenerateFrom(header, rng)
}

// GenerateFrom produces a program from an explicit seed header.
func (g *Generator) GenerateFrom(header string, rng *rand.Rand) string {
	src, _ := g.GenerateFromN(header, rng)
	return src
}

// GenerateFromN produces a program from an explicit seed header and
// reports how many tokens the LM sampled for it (the generation
// benchmarks' token-throughput denominator). The frozen and map paths
// return byte-identical programs and counts for a fixed seed.
func (g *Generator) GenerateFromN(header string, rng *rand.Rand) (string, int) {
	if g.frozen != nil {
		return g.generateFrozen(header, rng)
	}
	stream := g.encodeTokens(TokenizeCode(header))
	prefix := len(stream)
	depth := braceDepth(stream, 0)
	sawBrace := strings.Contains(header, "{")
	for len(stream) < g.MaxTokens {
		tok, ok := g.model.Sample(stream, g.topK, rng)
		if !ok || tok == "<EOF>" {
			break
		}
		stream = append(stream, tok)
		switch tok {
		case "{":
			depth++
			sawBrace = true
		case "}":
			depth--
			if sawBrace && depth <= 0 {
				return detokenize(stream) + trailerFor(header), len(stream) - prefix
			}
		}
	}
	return detokenize(stream), len(stream) - prefix
}

// generateFrozen is the token-ID hot path: the stream is an []int32, each
// token costs one hash lookup plus one rng draw, and the program text is
// materialised exactly once at the end through a pre-sized builder. Header
// tokens outside the trained vocabulary keep their ID as -1 — they can
// never extend a trained context, which is precisely the map model's
// failed-lookup backoff — and their text is recovered from the header's
// own token strings at detokenization.
func (g *Generator) generateFrozen(header string, rng *rand.Rand) (string, int) {
	p, ok := g.primed[header]
	if !ok {
		p = g.primeHeader(header) // ad-hoc header (Montage's expression priming)
	}
	prefix := p.toks
	ids := make([]int32, len(p.ids), len(p.ids)+256)
	copy(ids, p.ids)
	depth := p.depth
	sawBrace := p.sawBrace
	eof := g.frozen.EOF()
	for len(ids) < g.MaxTokens {
		id, ok := g.frozen.SampleID(ids, g.topK, rng)
		if !ok || id == eof {
			break
		}
		ids = append(ids, id)
		if id == g.lbrace {
			depth++
			sawBrace = true
		} else if id == g.rbrace {
			depth--
			if sawBrace && depth <= 0 {
				return g.detokenizeIDs(prefix, ids) + trailerFor(header), len(ids) - len(prefix)
			}
		}
	}
	return g.detokenizeIDs(prefix, ids), len(ids) - len(prefix)
}

// detokenizeIDs renders an ID stream to source through one exactly-sized
// builder. IDs < 0 only occur in the header prefix (sampled tokens are
// always interned), so their text comes from the prefix tokens.
func (g *Generator) detokenizeIDs(prefix []string, ids []int32) string {
	n := 0
	for i, id := range ids {
		if id >= 0 {
			n += len(g.detok[id])
		} else {
			n += len(bpe.Strip(prefix[i]))
		}
	}
	var b strings.Builder
	b.Grow(n)
	for i, id := range ids {
		if id >= 0 {
			b.WriteString(g.detok[id])
		} else {
			b.WriteString(bpe.Strip(prefix[i]))
		}
	}
	return b.String()
}

// trailerFor closes the idiom the seed header opened: function-expression
// headers get invoked, declarations get called by name when obvious.
func trailerFor(header string) string {
	h := strings.TrimSpace(header)
	if strings.HasPrefix(h, "var ") && strings.Contains(h, "= function") {
		name := strings.TrimPrefix(h, "var ")
		if i := strings.IndexAny(name, " ="); i > 0 {
			name = name[:i]
		}
		return ";\n" + name + "();\n"
	}
	if strings.HasPrefix(h, "function ") {
		name := strings.TrimPrefix(h, "function ")
		if i := strings.IndexAny(name, " ("); i > 0 {
			name = name[:i]
		}
		if !strings.Contains(h, ",") && strings.Contains(h, "()") {
			return "\n" + name + "();\n"
		}
		return "\n"
	}
	return "\n"
}

func braceDepth(tokens []string, start int) int {
	d := start
	for _, t := range tokens {
		switch t {
		case "{":
			d++
		case "}":
			d--
		}
	}
	return d
}

// ---------- code tokenisation ----------

// TokenizeCode splits source into the generation alphabet: words, numbers,
// string/regex-ish literals, punctuation, and explicit space/newline tokens
// so that decoding reproduces layout.
func TokenizeCode(src string) []string {
	var out []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			out = append(out, "\n")
			i++
		case c == ' ' || c == '\t' || c == '\r':
			j := i
			for j < len(src) && (src[j] == ' ' || src[j] == '\t' || src[j] == '\r') {
				j++
			}
			out = append(out, " ")
			i = j
		case isWordStart(c):
			j := i
			for j < len(src) && isWordPart(src[j]) {
				j++
			}
			out = append(out, src[i:j])
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (isWordPart(src[j]) || src[j] == '.') {
				j++
			}
			out = append(out, src[i:j])
			i = j
		case c == '"' || c == '\'':
			j := i + 1
			for j < len(src) && src[j] != c {
				if src[j] == '\\' {
					j++
				}
				j++
			}
			if j < len(src) {
				j++
			}
			out = append(out, src[i:j])
			i = j
		default:
			out = append(out, string(c))
			i++
		}
	}
	return out
}

func isWordStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isWordPart(c byte) bool {
	return isWordStart(c) || (c >= '0' && c <= '9')
}

func isWordToken(tok string) bool {
	return len(tok) > 0 && isWordStart(tok[0])
}

// encode expands word tokens into BPE subwords; everything else passes
// through verbatim.
func encode(v *bpe.Vocab, tokens []string) []string {
	return encodeWith(v, nil, tokens, false)
}

// encodeWith is encode backed by a word→subwords memo: running the merge
// rules over a word costs O(merges × len), so repeated words — which is
// most of a corpus and every header — resolve through one map hit
// instead. learn populates the memo (training); generation passes false
// so the map stays read-only and shard-safe.
func encodeWith(v *bpe.Vocab, memo map[string][]string, tokens []string, learn bool) []string {
	out := make([]string, 0, len(tokens)+8)
	for _, t := range tokens {
		if !isWordToken(t) || len(t) == 1 {
			out = append(out, t)
			continue
		}
		subs, ok := memo[t]
		if !ok {
			subs = v.EncodeWord(t)
			if learn {
				memo[t] = subs
			}
		}
		out = append(out, subs...)
	}
	return out
}

// encodeTokens is the generation-time encoder: memo hits only.
func (g *Generator) encodeTokens(tokens []string) []string {
	return encodeWith(g.vocab, g.wordSubs, tokens, false)
}

// detokenize re-joins a BPE/code token stream into source text.
func detokenize(tokens []string) string { return bpe.Decode(tokens) }
