// Package campaign orchestrates fuzzing runs: a worker pool executes
// differential tests across testbeds, findings are deduplicated with the
// Figure-6 tree, reduced, and attributed to ground-truth catalog defects;
// report generators then regenerate every table and figure of the paper's
// evaluation.
package campaign

import (
	"context"
	"sort"
	"time"

	"comfort/internal/dedup"
	"comfort/internal/difftest"
	"comfort/internal/engines"
	"comfort/internal/exec"
	"comfort/internal/faultinject"
	"comfort/internal/fuzzers"
	"comfort/internal/js/analyze"
	"comfort/internal/reduce"
	"comfort/internal/spec"
)

// Config parameterises one fuzzing campaign.
type Config struct {
	Fuzzer   fuzzers.Fuzzer
	Testbeds []engines.Testbed
	// Cases is the number of test cases to execute (the scaled stand-in for
	// the paper's wall-clock budgets).
	Cases   int
	Fuel    int64
	Seed    int64
	Workers int
	// GenShards is the number of concurrent generator shards for fuzzers
	// implementing fuzzers.Forkable; 0 picks a default (min(4, GOMAXPROCS)).
	// The case stream is byte-identical for every shard count — shard s
	// owns batch indices j ≡ s (mod GenShards) and every batch's RNG is
	// derived from (Seed, j) alone — so this is purely a throughput knob.
	// Fuzzers without Fork generate serially regardless.
	GenShards int
	// ReduceWitnesses runs test-case reduction on each deduplicated
	// finding's witness after the campaign stream completes (off the hot
	// accounting path). Reduction uses the parallel ddmin subsystem with
	// this config's Workers; the reduced witnesses are byte-identical for
	// every worker count.
	ReduceWitnesses bool
	// DisableDedup turns the Figure-6 filter off (ablation).
	DisableDedup bool
	// DisableResolve keeps execution on the interpreter's dynamic
	// map-scope path instead of the slot-indexed resolve-once path — the
	// oracle/ablation knob, threaded through to the exec scheduler.
	DisableResolve bool
	// DisableCompile keeps execution on the (resolved) tree-walking
	// evaluator instead of the compile-once thunk path — the oracle and
	// ablation knob for internal/js/compile, threaded through to the
	// scheduler, attribution and reduction just like DisableResolve.
	DisableCompile bool
	// DisableShapes keeps objects on dictionary-mode property maps and the
	// compiled evaluator's inline caches empty — the oracle and ablation
	// knob for the hidden-class object layout, threaded through exactly
	// like DisableCompile.
	DisableShapes bool
	// DisableAnalyze turns the static-analysis products off at the
	// campaign level: executions recompute the early-error verdict from
	// the AST instead of the analyze-once cached report, and the sink
	// performs no divergence-risk suppression or feature accounting — the
	// oracle and ablation knob for internal/js/analyze. Early-error
	// semantics are identical in both modes, so the findings of a
	// DisableAnalyze campaign are exactly the default campaign's findings
	// plus the flagged-nondeterministic families it suppressed.
	DisableAnalyze bool
	// Context cancels the campaign early; Run returns the findings
	// accounted so far. Nil means context.Background().
	Context context.Context
	// Progress, when non-nil, is called from the accounting goroutine after
	// each ProgressEvery-th case is classified and accounted (and always on
	// the final case of the budget).
	Progress func(Progress)
	// ProgressEvery throttles the Progress callback — and the per-sample
	// scheduler cache-counter reads behind it — to every N-th classified
	// case. 0 means 1 (every case), preserving the historical behaviour;
	// large campaigns set it higher so accounting stops paying the
	// callback on the hot path.
	ProgressEvery int
	// Checkpoint, when non-empty, is the path the sink periodically (and
	// finally) persists the campaign's accounted state to, atomically —
	// see state.go. A killed campaign resumes from it via Resume with
	// findings byte-identical to an uninterrupted run.
	Checkpoint string
	// CheckpointEvery is the case cadence of checkpoint writes; 0 means
	// 256. Writes happen on the sink goroutine between cases, never
	// concurrently with accounting.
	CheckpointEvery int
	// WriteCheckpoint, when non-nil, replaces the default atomic
	// WriteState(Checkpoint, st) call for every checkpoint write. It is
	// the seam the campaign server uses to fence checkpoint writes with
	// its job lease: a server instance that lost its claim must refuse
	// the write instead of overwriting a peer's checkpoint. The function
	// owns durability; a returned error counts as a checkpoint failure
	// exactly like a failed WriteState. Like Checkpoint itself it shapes
	// where state lands, never what the campaign finds, so it stays
	// outside the checkpoint fingerprint.
	WriteCheckpoint func(*State) error
	// CheckpointInterval additionally checkpoints when this much wall time
	// has passed since the last write (requires Clock; 0 disables the
	// time axis).
	CheckpointInterval time.Duration
	// CaseDeadline arms a per-execution wall-clock watchdog in the
	// scheduler (requires Clock; 0 disables). A hung case surfaces as a
	// classified timeout finding instead of stalling a worker forever.
	CaseDeadline time.Duration
	// Clock supplies wall time for CheckpointInterval and CaseDeadline.
	// The campaign never calls time.Now itself — deterministic callers
	// leave Clock nil and stay clock-free; cmd/comfort injects time.Now.
	Clock func() time.Time
	// Faults is the deterministic fault-injection plan (nil in
	// production): injected evaluator panics, injected hangs, and
	// kill-after-checkpoint points for the crash-recovery oracle tests.
	Faults *faultinject.Plan
	// Gate, when non-nil, is a process-wide execution-slot pool shared by
	// several concurrent campaigns (the campaign server's shared worker
	// pool). Like Workers and GenShards it shapes scheduling only — the
	// findings are byte-identical with and without a gate — so it stays
	// outside the checkpoint fingerprint.
	Gate exec.Gate
	// resume carries the validated checkpoint a Resume call continues
	// from; nil for fresh runs.
	resume *State
}

// Progress is one campaign progress sample: case accounting position plus
// the scheduler's compiled-program cache and evaluator-path counters.
type Progress struct {
	// Done counts classified cases; Total is the configured budget.
	Done, Total int
	// CacheHits/CacheMisses/CacheEvictions are the scheduler's
	// compiled-program (parse-and-resolve-once) cache counters so far.
	CacheHits, CacheMisses, CacheEvictions int64
	// Compiled/Fallback count physical interpreter runs so far by
	// evaluator path: thunk-compiled programs vs tree-walked ones. In the
	// default configuration Fallback stays at zero; a non-zero value (or
	// an ablation run) is visible at a glance in -progress output.
	Compiled, Fallback int64
	// ICHits/ICMisses/ICMega are the compiled evaluator's inline-cache
	// counters so far (all zero under DisableShapes or DisableCompile).
	ICHits, ICMisses, ICMega uint64
	// Analyzed counts class executions that rode the analyze-once cached
	// report; EarlyErrorSkips counts executions the static early-error
	// gate short-circuited before any interpreter ran.
	Analyzed, EarlyErrorSkips int64
	// FlaggedNondet counts attributed findings diverted to the
	// suppressed-nondeterministic set so far.
	FlaggedNondet int64
	// FeaturesSeen is the number of distinct language features the
	// campaign's cases have exercised so far (of analyze.FeatureCount).
	FeaturesSeen int
	// Panics/WallTimeouts count physical executions that ended in a
	// recovered evaluator panic or a wall-clock watchdog abort;
	// Checkpoints counts checkpoint writes. All cumulative across resumes.
	Panics, WallTimeouts, Checkpoints int64
}

// Finding is one unique discovered bug, attributed to its seeded defect.
type Finding struct {
	Defect   *Defect
	TestCase string
	Reduced  string
	Verdict  difftest.Verdict
	Engine   string
	// Features is the witness's language-feature fingerprint (analyzer
	// feature names; nil under DisableAnalyze).
	Features []string
	// Flags lists the divergence-risk rules that fired on the witness.
	// Non-empty flags mean the finding lives in Result.SuppressedNondet
	// rather than Result.Found.
	Flags []string
	// strict records the mode of the deviant testbed, so the reduction
	// predicate replays the same divergence that was reported.
	strict bool
}

// ReductionStats summarises witness reduction across a campaign's
// findings (set when Config.ReduceWitnesses is on and anything was found).
type ReductionStats struct {
	Findings     int
	OrigBytes    int
	ReducedBytes int
	// Min/Median/Mean are over the per-finding reduced witness sizes.
	MinBytes    int
	MedianBytes float64
	MeanBytes   float64
}

// Defect aliases the engines type for the public API surface.
type Defect = engines.Defect

// Result summarises a campaign.
type Result struct {
	FuzzerName string
	CasesRun   int
	// Executed counts delivered testbed results — the (case × testbed)
	// grid. The scheduler's behaviour-class sharing may satisfy several
	// testbeds with one physical interpreter run (see internal/exec), so
	// this measures differential-testing coverage, not interpreter
	// invocations.
	Executed int
	Verdicts map[difftest.Verdict]int
	// Found maps defect ID → finding for every ground-truth defect the
	// campaign discovered.
	Found map[string]*Finding
	// DuplicatesFiltered counts test cases the dedup tree rejected.
	DuplicatesFiltered int
	// UnattributedFindings counts divergences that matched no single seeded
	// defect in isolation (interaction effects).
	UnattributedFindings int
	// SuppressedNondet maps defect ID → finding for divergences whose
	// witness carried a divergence-risk flag (Math.random, for-in order,
	// ...): real deviations, but suppressible false positives per the
	// paper's filtering step. Disjoint from Found; always empty under
	// DisableAnalyze.
	SuppressedNondet map[string]*Finding
	// EarlyErrorCases counts cases rejected uniformly by the static
	// early-error gate (a subset of the invalid verdict count) — each one
	// classified without a single interpreter run.
	EarlyErrorCases int
	// Analyzed/EarlyErrorSkips are the scheduler's analyze-gate counters
	// (see Progress); FlaggedNondet counts the findings in
	// SuppressedNondet.
	Analyzed, EarlyErrorSkips int64
	FlaggedNondet             int64
	// FeatureCounts maps analyzer feature name → number of cases whose
	// fingerprint carried it; FeaturesSeen is the distinct feature count
	// (nil/0 under DisableAnalyze).
	FeatureCounts map[string]int
	FeaturesSeen  int
	// Reduction summarises witness reduction (nil unless
	// Config.ReduceWitnesses was set and findings exist).
	Reduction *ReductionStats
	// CacheHits/CacheMisses/CacheEvictions are the final compiled-program
	// cache counters of the campaign's scheduler.
	CacheHits, CacheMisses, CacheEvictions int64
	// Compiled/Fallback are the final evaluator-path execution counters
	// (see Progress).
	Compiled, Fallback int64
	// ICHits/ICMisses/ICMega are the final inline-cache counters.
	ICHits, ICMisses, ICMega uint64
	// Panics counts physical executions that ended in a recovered
	// evaluator panic (each surfaced as a classified crash result, never a
	// dead process); WallTimeouts counts wall-clock watchdog aborts.
	Panics, WallTimeouts int64
	// Checkpoints/CheckpointFailures count checkpoint writes and failed
	// write attempts (a failed write never stops the campaign).
	Checkpoints, CheckpointFailures int64
}

// FoundDefects returns the discovered defects in defect-ID order.
func (r *Result) FoundDefects() []*Defect {
	ids := make([]string, 0, len(r.Found))
	for id := range r.Found { //detlint:order — sorted before use below
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Defect, 0, len(ids))
	for _, id := range ids {
		out = append(out, r.Found[id].Defect)
	}
	return out
}

// Run executes the campaign as a streaming pipeline: a fuzzer stage
// generates cases sequentially (the RNG is the determinism anchor), the
// exec scheduler runs the (case × testbed) grid over a bounded worker pool
// with a parse-once cache, and this goroutine — the sink — classifies,
// deduplicates and attributes findings as outcomes stream in. Outcomes
// arrive in case order and all accounting is single-threaded, so the
// result is independent of the worker count. Findings are accounted
// incrementally: memory stays bounded by the scheduler's in-flight window
// rather than the campaign's case budget.
func Run(cfg Config) *Result {
	// The error path is only reachable with a resume checkpoint, which
	// Resume validates before calling run.
	res, _ := run(withDefaults(cfg))
	return res
}

// withDefaults resolves the config's zero-value knobs. Both entry points
// (Run, Resume) apply it exactly once, before fingerprinting.
func withDefaults(cfg Config) Config {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Fuel == 0 {
		cfg.Fuel = difftest.DefaultFuel
	}
	if len(cfg.Testbeds) == 0 {
		cfg.Testbeds = engines.LatestTestbeds()
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 256
	}
	return cfg
}

// run is the shared campaign body behind Run and Resume; cfg has defaults
// applied. The only error source is a corrupt resume checkpoint.
func run(cfg Config) (*Result, error) {
	baseCtx := cfg.Context
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	// The campaign's own cancel handle: a simulated checkpoint kill stops
	// the pipeline without touching the caller's context.
	ctx, cancel := context.WithCancel(baseCtx)
	defer cancel()
	res := &Result{
		FuzzerName:       cfg.Fuzzer.Name(),
		Verdicts:         map[difftest.Verdict]int{},
		Found:            map[string]*Finding{},
		SuppressedNondet: map[string]*Finding{},
	}
	if !cfg.DisableAnalyze {
		res.FeatureCounts = map[string]int{}
	}
	tree := dedup.New(dedup.KnownAPIsFromSpec(spec.Default().Names()))

	// Resume: load the killed run's accounted state and position the
	// generator at the first unaccounted case. base carries the killed
	// run's diagnostic counters so totals stay cumulative.
	var base State
	var start genStart
	var featsSeen analyze.Features
	if cfg.resume != nil {
		base = *cfg.resume
		bits, err := restoreInto(cfg.resume, res, tree)
		if err != nil {
			return nil, err
		}
		featsSeen = analyze.Features(bits)
		start = genStart{batch: base.NextBatch, off: base.NextOff, index: base.CasesDone}
		if base.Done || base.CasesDone >= cfg.Cases {
			// Nothing left to run: reconstruct the final result.
			finishResult(res, &base, nil, featsSeen)
			return res, nil
		}
	}

	// Stage 1: the fuzzer. The stream depends only on the seed — Forkable
	// fuzzers generate as GenShards concurrent shards whose batches are
	// pure functions of (seed, batch index) and merge back in index order,
	// stateful fuzzers keep the single sequential RNG — so the stream is
	// reproducible regardless of shard count and downstream scheduling
	// (see generate.go).
	shards := cfg.GenShards
	if shards <= 0 {
		shards = defaultGenShards()
	}
	caseCh := make(chan exec.Case)
	go generateCases(ctx, cfg, shards, start, caseCh)

	// Stage 2: the scheduler.
	sched := exec.New(exec.Config{
		Testbeds:       cfg.Testbeds,
		Workers:        cfg.Workers,
		Fuel:           cfg.Fuel,
		Seed:           cfg.Seed,
		DisableResolve: cfg.DisableResolve,
		DisableCompile: cfg.DisableCompile,
		DisableShapes:  cfg.DisableShapes,
		DisableAnalyze: cfg.DisableAnalyze,
		CaseDeadline:   cfg.CaseDeadline,
		Clock:          cfg.Clock,
		Faults:         cfg.Faults,
		Gate:           cfg.Gate,
	})
	outcomes := sched.Run(ctx, caseCh)

	// Stage 3: the sink — classify/dedup/attribute in stream order, with
	// checkpoint writes between cases (never concurrent with accounting).
	progressEvery := cfg.ProgressEvery
	if progressEvery <= 0 {
		progressEvery = 1
	}
	fp := fingerprint(cfg)
	ckpt := cfg.Checkpoint != "" || cfg.WriteCheckpoint != nil
	nextBatch, nextOff := start.batch, start.off
	sinceCkpt := 0
	var ckptWrites, ckptFails int64 // this process's writes
	var lastCkptAt time.Time
	if cfg.Clock != nil {
		lastCkptAt = cfg.Clock()
	}
	snapshot := func(done bool) *State {
		st := &State{
			Format: StateFormatVersion, Fingerprint: fp,
			CasesDone: res.CasesRun, NextBatch: nextBatch, NextOff: nextOff, Done: done,
			Executed:             res.Executed,
			Verdicts:             map[string]int{},
			DuplicatesFiltered:   res.DuplicatesFiltered,
			UnattributedFindings: res.UnattributedFindings,
			EarlyErrorCases:      res.EarlyErrorCases,
			FlaggedNondet:        res.FlaggedNondet,
			FeatureBits:          uint64(featsSeen),
			Dedup:                tree.Snapshot(),
			Found:                saveFindings(res.Found),
			Suppressed:           saveFindings(res.SuppressedNondet),
		}
		for v, n := range res.Verdicts { //detlint:order — string-keyed map output (JSON-sorted)
			st.Verdicts[v.String()] = n
		}
		if res.FeatureCounts != nil {
			st.FeatureCounts = map[string]int{}
			for name, n := range res.FeatureCounts { //detlint:order — string-keyed map output (JSON-sorted)
				st.FeatureCounts[name] = n
			}
		}
		st.CacheHits, st.CacheMisses, st.CacheEvictions = sched.CacheStats()
		st.Compiled, st.Fallback = sched.ExecCounts()
		st.ICHits, st.ICMisses, st.ICMega = sched.ICStats()
		st.Analyzed, st.EarlyErrSkips = sched.AnalyzeStats()
		pn, wt := sched.FaultStats()
		st.CacheHits += base.CacheHits
		st.CacheMisses += base.CacheMisses
		st.CacheEvictions += base.CacheEvictions
		st.Compiled += base.Compiled
		st.Fallback += base.Fallback
		st.ICHits += base.ICHits
		st.ICMisses += base.ICMisses
		st.ICMega += base.ICMega
		st.Analyzed += base.Analyzed
		st.EarlyErrSkips += base.EarlyErrSkips
		st.Panics = base.Panics + pn
		st.WallTimeouts = base.WallTimeouts + wt
		st.Checkpoints = base.Checkpoints + ckptWrites
		st.CkptFailures = base.CkptFailures + ckptFails
		return st
	}
	writeCkpt := func(done bool) {
		st := snapshot(done)
		var err error
		if cfg.WriteCheckpoint != nil {
			err = cfg.WriteCheckpoint(st)
		} else {
			err = WriteState(cfg.Checkpoint, st)
		}
		if err != nil {
			ckptFails++
		} else {
			ckptWrites++
		}
		sinceCkpt = 0
		if cfg.Clock != nil {
			lastCkptAt = cfg.Clock()
		}
	}
	killed := false
	for oc := range outcomes {
		res.CasesRun++
		res.Executed += len(oc.Entries)
		if oc.Batch < 0 {
			nextBatch, nextOff = -1, 0
		} else {
			nextBatch, nextOff = oc.Batch, oc.Off+1
		}
		cr := oc.Result
		res.Verdicts[cr.Verdict]++
		if cr.EarlyError {
			res.EarlyErrorCases++
		}
		if oc.Analysis != nil {
			featsSeen |= oc.Analysis.Features
			for _, name := range oc.Analysis.Features.Names() {
				res.FeatureCounts[name]++
			}
		}
		if cr.Verdict.IsBuggy() {
			accountCase(cfg, res, tree, oc.Src, cr, oc.Analysis)
		}
		if cfg.Progress != nil && (res.CasesRun%progressEvery == 0 || res.CasesRun == cfg.Cases) {
			h, m, e := sched.CacheStats()
			cc, fb := sched.ExecCounts()
			ih, im, ig := sched.ICStats()
			an, es := sched.AnalyzeStats()
			pn, wt := sched.FaultStats()
			cfg.Progress(Progress{
				Done: res.CasesRun, Total: cfg.Cases,
				CacheHits: base.CacheHits + h, CacheMisses: base.CacheMisses + m,
				CacheEvictions: base.CacheEvictions + e,
				Compiled:       base.Compiled + cc, Fallback: base.Fallback + fb,
				ICHits: base.ICHits + ih, ICMisses: base.ICMisses + im, ICMega: base.ICMega + ig,
				Analyzed: base.Analyzed + an, EarlyErrorSkips: base.EarlyErrSkips + es,
				FlaggedNondet: res.FlaggedNondet,
				FeaturesSeen:  featsSeen.Count(),
				Panics:        base.Panics + pn, WallTimeouts: base.WallTimeouts + wt,
				Checkpoints: base.Checkpoints + ckptWrites,
			})
		}
		if ckpt && res.CasesRun < cfg.Cases {
			sinceCkpt++
			due := sinceCkpt >= cfg.CheckpointEvery
			if !due && cfg.CheckpointInterval > 0 && cfg.Clock != nil &&
				cfg.Clock().Sub(lastCkptAt) >= cfg.CheckpointInterval {
				due = true
			}
			if due {
				writeCkpt(false)
				if cfg.Faults.KillAtCheckpoint(int(ckptWrites)) {
					// Simulate the process dying right after the write: no
					// final flush, no reduction, pipeline torn down. The CLI
					// installs a real os.Exit in Faults.Kill for soak runs.
					if cfg.Faults.Kill != nil {
						cfg.Faults.Kill()
					}
					killed = true
					cancel()
					break
				}
			}
		}
	}
	if killed {
		for range outcomes { // drain so the scheduler's goroutines exit
		}
	}
	pn, wt := sched.FaultStats()
	finishResult(res, &base, sched, featsSeen)
	res.Panics = base.Panics + pn
	res.WallTimeouts = base.WallTimeouts + wt
	res.Checkpoints = base.Checkpoints + ckptWrites
	res.CheckpointFailures = base.CkptFailures + ckptFails
	if killed {
		return res, nil
	}

	// Stage 4 (optional): witness reduction, after the stream has drained
	// and dedup/attribution settled — never on the hot accounting path.
	if cfg.ReduceWitnesses {
		reduceFindings(ctx, cfg, res)
	}

	// Final flush — also on cancellation, so a gracefully-stopped partial
	// campaign resumes from exactly where it was interrupted. Runs after
	// reduction so a complete checkpoint carries the reduced witnesses.
	if ckpt {
		writeCkpt(res.CasesRun == cfg.Cases)
		res.Checkpoints = base.Checkpoints + ckptWrites
		res.CheckpointFailures = base.CkptFailures + ckptFails
	}
	return res, nil
}

// finishResult folds the scheduler's diagnostic counters (plus the resume
// baselines) into the result. sched is nil when a Done checkpoint
// reconstructs a result without running a pipeline.
func finishResult(res *Result, base *State, sched *exec.Scheduler, featsSeen analyze.Features) {
	var h, m, e, cc, fb, an, es int64
	var ih, im, ig uint64
	if sched != nil {
		h, m, e = sched.CacheStats()
		cc, fb = sched.ExecCounts()
		ih, im, ig = sched.ICStats()
		an, es = sched.AnalyzeStats()
	}
	res.CacheHits = base.CacheHits + h
	res.CacheMisses = base.CacheMisses + m
	res.CacheEvictions = base.CacheEvictions + e
	res.Compiled = base.Compiled + cc
	res.Fallback = base.Fallback + fb
	res.ICHits = base.ICHits + ih
	res.ICMisses = base.ICMisses + im
	res.ICMega = base.ICMega + ig
	res.Analyzed = base.Analyzed + an
	res.EarlyErrorSkips = base.EarlyErrSkips + es
	res.FeaturesSeen = featsSeen.Count()
	if sched == nil {
		res.Panics = base.Panics
		res.WallTimeouts = base.WallTimeouts
		res.Checkpoints = base.Checkpoints
		res.CheckpointFailures = base.CkptFailures
	}
}

// reduceFindings shrinks every finding's witness with the parallel ddmin
// reducer. Findings are processed in defect-ID order and the reducer is
// worker-count independent, so the reduced witnesses are deterministic.
func reduceFindings(ctx context.Context, cfg Config, res *Result) {
	ids := make([]string, 0, len(res.Found))
	for id := range res.Found { //detlint:order — sorted before use below
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var sizes []int
	stats := &ReductionStats{}
	for _, id := range ids {
		f := res.Found[id]
		f.Reduced = reduceFinding(ctx, f, cfg)
		stats.Findings++
		stats.OrigBytes += len(f.TestCase)
		stats.ReducedBytes += len(f.Reduced)
		sizes = append(sizes, len(f.Reduced))
	}
	if stats.Findings == 0 {
		return
	}
	sort.Ints(sizes)
	stats.MinBytes = sizes[0]
	if n := len(sizes); n%2 == 1 {
		stats.MedianBytes = float64(sizes[n/2])
	} else {
		stats.MedianBytes = float64(sizes[n/2-1]+sizes[n/2]) / 2
	}
	stats.MeanBytes = float64(stats.ReducedBytes) / float64(stats.Findings)
	res.Reduction = stats
}

// reduceFinding shrinks a bug-exposing test case while the single-defect
// divergence persists. The defect and reference executors are prepared
// once; the predicate then costs two interpretations per candidate, which
// the reducer evaluates speculatively in parallel.
func reduceFinding(ctx context.Context, f *Finding, cfg Config) string {
	// The predicate replays divergences on the same evaluator path the
	// campaign observed them on, and shares one compiled candidate between
	// the defect and reference executions when parser options coincide.
	opts := engines.RunOptions{Fuel: cfg.Fuel, Seed: cfg.Seed,
		DisableResolve: cfg.DisableResolve, DisableCompile: cfg.DisableCompile,
		DisableShapes: cfg.DisableShapes, DisableAnalyze: cfg.DisableAnalyze}
	buggy := engines.NewDefectRunner(f.Defect, f.strict)
	ref := engines.NewDefectRunner(nil, f.strict)
	return reduce.Parallel(f.TestCase, engines.DivergesRunners(buggy, ref, opts),
		reduce.Options{Workers: cfg.Workers, Context: ctx})
}

// accountCase folds one buggy case into the campaign result: Figure-6
// deduplication, then ground-truth attribution of each deviant testbed.
// When the witness's static analysis carries divergence-risk flags
// (rep.Flags), dedup and attribution still run exactly as in the
// no-analysis pipeline — only the final Found insertion is diverted to
// SuppressedNondet. The seen-guard consults both maps, so a later
// unflagged witness never re-adds a suppressed defect: the Found set of a
// default campaign is exactly the DisableAnalyze campaign's Found set
// minus the SuppressedNondet IDs.
func accountCase(cfg Config, res *Result, tree *dedup.Tree, src string, cr difftest.CaseResult, rep *analyze.Report) {
	var flags, feats []string
	if rep != nil {
		flags = rep.Flags.Names()
		feats = rep.Features.Names()
	}
	api := tree.APIOf(src)
	for _, dev := range cr.Deviations {
		engine := dev.Testbed.Version.Engine
		class := dedup.BehaviourClass(dev.Result.Outcome.String(), dev.Result.ErrName, dev.Result.Output)
		if !cfg.DisableDedup && tree.SeenOrAdd(engine, api, class) {
			res.DuplicatesFiltered++
			continue
		}
		attributed := engines.Attribute(src, dev.Testbed,
			engines.RunOptions{Fuel: cfg.Fuel, Seed: cfg.Seed,
				DisableResolve: cfg.DisableResolve, DisableCompile: cfg.DisableCompile,
				DisableShapes: cfg.DisableShapes, DisableAnalyze: cfg.DisableAnalyze})
		if len(attributed) == 0 {
			res.UnattributedFindings++
			continue
		}
		for _, d := range attributed {
			if _, seen := res.Found[d.ID]; seen {
				continue
			}
			if _, seen := res.SuppressedNondet[d.ID]; seen {
				continue
			}
			f := &Finding{
				Defect: d, TestCase: src, Verdict: cr.Verdict,
				Engine: engine, Features: feats, Flags: flags,
				strict: dev.Testbed.Strict,
			}
			if len(flags) > 0 {
				res.SuppressedNondet[d.ID] = f
				res.FlaggedNondet++
			} else {
				res.Found[d.ID] = f
			}
		}
	}
}
