package builtins

import (
	"math"
	"strings"

	"comfort/internal/js/interp"
	"comfort/internal/js/jsnum"
)

// typedKinds maps constructor names to element kinds.
var typedKinds = []struct {
	name string
	kind interp.ElemKind
}{
	{"Int8Array", interp.ElemInt8},
	{"Uint8Array", interp.ElemUint8},
	{"Uint8ClampedArray", interp.ElemUint8Clamped},
	{"Int16Array", interp.ElemInt16},
	{"Uint16Array", interp.ElemUint16},
	{"Int32Array", interp.ElemInt32},
	{"Uint32Array", interp.ElemUint32},
	{"Float32Array", interp.ElemFloat32},
	{"Float64Array", interp.ElemFloat64},
}

func installTypedArrays(r *registry) {
	in := r.in

	// ArrayBuffer.
	abProto := in.NewObject(in.Protos["Object"])
	abCtor := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		n, err := in.ToInteger(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		if n < 0 || n > 1<<26 {
			return interp.Undefined(), in.RangeErrorf("Invalid array buffer length")
		}
		if err := in.Burn(int64(n) / 64); err != nil {
			return interp.Undefined(), err
		}
		o := in.NewObject(in.Protos["ArrayBuffer"])
		o.Class = "ArrayBuffer"
		o.Buf = &interp.ArrayBuffer{Data: make([]byte, int(n))}
		o.SetSlot("byteLength", interp.Number(n), 0)
		return interp.ObjValue(o), nil
	}
	r.ctor("ArrayBuffer", 1, abProto, abCtor, abCtor)

	// Shared %TypedArray%.prototype methods are installed per concrete type
	// (our subset has no abstract intrinsic object).
	for _, tk := range typedKinds {
		installOneTypedArray(r, tk.name, tk.kind)
	}

	installDataView(r)
}

func installOneTypedArray(r *registry, name string, kind interp.ElemKind) {
	in := r.in
	proto := in.NewObject(in.Protos["Object"])
	size := kind.Size()

	construct := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o := in.NewObject(in.Protos[name])
		o.Class = name
		o.ElemKind = kind
		a0 := arg(args, 0)
		switch {
		case a0.IsUndefined():
			o.Buf = &interp.ArrayBuffer{}
		case a0.IsObject() && a0.Obj().Class == "ArrayBuffer":
			buf := a0.Obj().Buf
			off := 0.0
			if ov := arg(args, 1); !ov.IsUndefined() {
				var err error
				off, err = in.ToInteger(ov)
				if err != nil {
					return interp.Undefined(), err
				}
			}
			if off < 0 || off > float64(len(buf.Data)) || jsnum.SafeInt(off)%size != 0 {
				return interp.Undefined(), in.RangeErrorf("start offset of %s should be a multiple of %d", name, size)
			}
			length := (len(buf.Data) - jsnum.SafeInt(off)) / size
			if lv := arg(args, 2); !lv.IsUndefined() {
				lf, err := in.ToInteger(lv)
				if err != nil {
					return interp.Undefined(), err
				}
				if lf < 0 || jsnum.SafeInt(lf)*size+jsnum.SafeInt(off) > len(buf.Data) {
					return interp.Undefined(), in.RangeErrorf("Invalid typed array length")
				}
				length = jsnum.SafeInt(lf)
			}
			o.Buf = buf
			o.ByteOff = jsnum.SafeInt(off)
			o.ArrayLen = length
			return interp.ObjValue(o), nil
		case a0.IsObject() && (a0.Obj().IsArray() || a0.Obj().ElemKind != interp.ElemNone):
			var src []interp.Value
			if a0.Obj().IsArray() {
				src = a0.Obj().ArrayElems()
			} else {
				for i := 0; i < a0.Obj().ArrayLen; i++ {
					src = append(src, interp.Number(a0.Obj().TypedGet(i)))
				}
			}
			o.Buf = &interp.ArrayBuffer{Data: make([]byte, len(src)*size)}
			o.ArrayLen = len(src)
			for i, v := range src {
				n, err := in.ToNumber(v)
				if err != nil {
					return interp.Undefined(), err
				}
				o.TypedSet(i, n)
			}
			return interp.ObjValue(o), nil
		default:
			// Numeric length: the ToInteger conversion here is the
			// SpiderMonkey Listing-3 conformance rule (3.14 → 3).
			n, err := in.ToInteger(a0)
			if err != nil {
				return interp.Undefined(), err
			}
			nn, err2 := in.ToNumber(a0)
			if err2 == nil && (nn < 0 || math.IsInf(nn, 0)) {
				return interp.Undefined(), in.RangeErrorf("Invalid typed array length: %v", nn)
			}
			if n < 0 || n > 1<<24 {
				return interp.Undefined(), in.RangeErrorf("Invalid typed array length")
			}
			if err := in.Burn(int64(n) / 32); err != nil {
				return interp.Undefined(), err
			}
			o.Buf = &interp.ArrayBuffer{Data: make([]byte, int(n)*size)}
			o.ArrayLen = int(n)
		}
		return interp.ObjValue(o), nil
	}
	callErr := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.Undefined(), in.TypeErrorf("Constructor %s requires 'new'", name)
	}
	ctor := r.ctor(name, 3, proto, callErr, construct)
	ctor.SetSlot("BYTES_PER_ELEMENT", interp.Number(float64(size)), 0)
	proto.SetSlot("BYTES_PER_ELEMENT", interp.Number(float64(size)), 0)

	thisTyped := func(in *interp.Interp, this interp.Value, method string) (*interp.Object, error) {
		if this.IsObject() && this.Obj().Class == name {
			return this.Obj(), nil
		}
		return nil, in.TypeErrorf("%s called on incompatible receiver", method)
	}

	// %TypedArray%.prototype.set — the JSC Listing-5 API: a String source is
	// an array-like whose elements convert via ToNumber.
	r.method(proto, name+".prototype.set", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisTyped(in, this, name+".prototype.set")
		if err != nil {
			return interp.Undefined(), err
		}
		offF, err := in.ToInteger(arg(args, 1))
		if err != nil {
			return interp.Undefined(), err
		}
		if offF < 0 || offF > float64(o.ArrayLen) {
			return interp.Undefined(), in.RangeErrorf("offset is out of bounds")
		}
		off := jsnum.SafeInt(offF)
		src := arg(args, 0)
		var items []interp.Value
		switch {
		case src.IsObject() && src.Obj().IsArray():
			items = src.Obj().ArrayElems()
		case src.IsObject() && src.Obj().ElemKind != interp.ElemNone && src.Obj().Class != "DataView":
			for i := 0; i < src.Obj().ArrayLen; i++ {
				items = append(items, interp.Number(src.Obj().TypedGet(i)))
			}
		default:
			// Generic array-like path: ToObject(source), read length, then
			// indexed elements. Strings land here per ECMA-262.
			so, err := in.ToObject(src)
			if err != nil {
				return interp.Undefined(), err
			}
			lenV, err := in.GetPropKey(interp.ObjValue(so), "length")
			if err != nil {
				return interp.Undefined(), err
			}
			n, err := in.ToInteger(lenV)
			if err != nil {
				return interp.Undefined(), err
			}
			for i := 0; i < jsnum.SafeInt(n); i++ {
				v, err := in.GetPropKey(interp.ObjValue(so), jsnum.Format(float64(i)))
				if err != nil {
					return interp.Undefined(), err
				}
				items = append(items, v)
			}
		}
		if off+len(items) > o.ArrayLen {
			return interp.Undefined(), in.RangeErrorf("offset is out of bounds")
		}
		for i, v := range items {
			n, err := in.ToNumber(v)
			if err != nil {
				return interp.Undefined(), err
			}
			o.TypedSet(off+i, n)
		}
		return interp.Undefined(), nil
	})

	r.method(proto, name+".prototype.fill", 3, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisTyped(in, this, name+".prototype.fill")
		if err != nil {
			return interp.Undefined(), err
		}
		n, err := in.ToNumber(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		start, end, err := sliceRange(in, restArgs(args, 1), o.ArrayLen)
		if err != nil {
			return interp.Undefined(), err
		}
		for i := start; i < end; i++ {
			o.TypedSet(i, n)
		}
		return this, nil
	})

	r.method(proto, name+".prototype.subarray", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisTyped(in, this, name+".prototype.subarray")
		if err != nil {
			return interp.Undefined(), err
		}
		start, end, err := sliceRange(in, args, o.ArrayLen)
		if err != nil {
			return interp.Undefined(), err
		}
		sub := in.NewObject(in.Protos[name])
		sub.Class = name
		sub.ElemKind = kind
		sub.Buf = o.Buf
		sub.ByteOff = o.ByteOff + start*size
		sub.ArrayLen = end - start
		return interp.ObjValue(sub), nil
	})

	r.method(proto, name+".prototype.indexOf", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisTyped(in, this, name+".prototype.indexOf")
		if err != nil {
			return interp.Undefined(), err
		}
		target, err := in.ToNumber(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		for i := 0; i < o.ArrayLen; i++ {
			if o.TypedGet(i) == target {
				return interp.Number(float64(i)), nil
			}
		}
		return interp.Number(-1), nil
	})

	join := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisTyped(in, this, name+".prototype.join")
		if err != nil {
			return interp.Undefined(), err
		}
		sep := ","
		if s := arg(args, 0); !s.IsUndefined() {
			sep, err = in.ToString(s)
			if err != nil {
				return interp.Undefined(), err
			}
		}
		var parts []string
		for i := 0; i < o.ArrayLen; i++ {
			parts = append(parts, jsnum.Format(o.TypedGet(i)))
		}
		return interp.String(strings.Join(parts, sep)), nil
	}
	r.method(proto, name+".prototype.join", 1, join)
	r.method(proto, name+".prototype.toString", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return join(in, this, nil)
	})

	r.method(proto, name+".prototype.slice", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisTyped(in, this, name+".prototype.slice")
		if err != nil {
			return interp.Undefined(), err
		}
		start, end, err := sliceRange(in, args, o.ArrayLen)
		if err != nil {
			return interp.Undefined(), err
		}
		out := in.NewObject(in.Protos[name])
		out.Class = name
		out.ElemKind = kind
		out.Buf = &interp.ArrayBuffer{Data: make([]byte, (end-start)*size)}
		out.ArrayLen = end - start
		for i := start; i < end; i++ {
			out.TypedSet(i-start, o.TypedGet(i))
		}
		return interp.ObjValue(out), nil
	})
}

func installDataView(r *registry) {
	in := r.in
	proto := in.NewObject(in.Protos["Object"])

	construct := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		a0 := arg(args, 0)
		if !a0.IsObject() || a0.Obj().Class != "ArrayBuffer" {
			return interp.Undefined(), in.TypeErrorf("First argument to DataView constructor must be an ArrayBuffer")
		}
		buf := a0.Obj().Buf
		off := 0.0
		var err error
		if ov := arg(args, 1); !ov.IsUndefined() {
			off, err = in.ToInteger(ov)
			if err != nil {
				return interp.Undefined(), err
			}
		}
		if off < 0 || off > float64(len(buf.Data)) || math.IsNaN(off) {
			return interp.Undefined(), in.RangeErrorf("Start offset %v is outside the bounds of the buffer", off)
		}
		length := len(buf.Data) - jsnum.SafeInt(off)
		if lv := arg(args, 2); !lv.IsUndefined() {
			lf, err := in.ToInteger(lv)
			if err != nil {
				return interp.Undefined(), err
			}
			if lf < 0 || jsnum.SafeInt(off)+jsnum.SafeInt(lf) > len(buf.Data) {
				return interp.Undefined(), in.RangeErrorf("Invalid DataView length")
			}
			length = jsnum.SafeInt(lf)
		}
		o := in.NewObject(in.Protos["DataView"])
		o.Class = "DataView"
		o.ElemKind = interp.ElemUint8
		o.Buf = buf
		o.ByteOff = jsnum.SafeInt(off)
		o.ArrayLen = length
		o.SetSlot("byteLength", interp.Number(float64(length)), 0)
		o.SetSlot("byteOffset", interp.Number(off), 0)
		return interp.ObjValue(o), nil
	}
	callErr := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.Undefined(), in.TypeErrorf("Constructor DataView requires 'new'")
	}
	r.ctor("DataView", 3, proto, callErr, construct)

	thisDV := func(in *interp.Interp, this interp.Value, method string) (*interp.Object, error) {
		if this.IsObject() && this.Obj().Class == "DataView" {
			return this.Obj(), nil
		}
		return nil, in.TypeErrorf("%s called on incompatible receiver", method)
	}

	type access struct {
		name string
		size int
		get  func(d []byte, le bool) float64
		put  func(d []byte, v float64, le bool)
	}
	rd16 := func(d []byte, le bool) uint16 {
		if le {
			return uint16(d[0]) | uint16(d[1])<<8
		}
		return uint16(d[1]) | uint16(d[0])<<8
	}
	wr16 := func(d []byte, v uint16, le bool) {
		if le {
			d[0], d[1] = byte(v), byte(v>>8)
		} else {
			d[1], d[0] = byte(v), byte(v>>8)
		}
	}
	rd32 := func(d []byte, le bool) uint32 {
		if le {
			return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
		}
		return uint32(d[3]) | uint32(d[2])<<8 | uint32(d[1])<<16 | uint32(d[0])<<24
	}
	wr32 := func(d []byte, v uint32, le bool) {
		if le {
			d[0], d[1], d[2], d[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		} else {
			d[3], d[2], d[1], d[0] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		}
	}
	rd64 := func(d []byte, le bool) uint64 {
		if le {
			return uint64(rd32(d, true)) | uint64(rd32(d[4:], true))<<32
		}
		return uint64(rd32(d[4:], false)) | uint64(rd32(d, false))<<32
	}
	wr64 := func(d []byte, v uint64, le bool) {
		if le {
			wr32(d, uint32(v), true)
			wr32(d[4:], uint32(v>>32), true)
		} else {
			wr32(d[4:], uint32(v), false)
			wr32(d, uint32(v>>32), false)
		}
	}

	accessors := []access{
		{"Int8", 1,
			func(d []byte, le bool) float64 { return float64(int8(d[0])) },
			func(d []byte, v float64, le bool) { d[0] = byte(int8(int64(v))) }},
		{"Uint8", 1,
			func(d []byte, le bool) float64 { return float64(d[0]) },
			func(d []byte, v float64, le bool) { d[0] = byte(uint8(int64(v))) }},
		{"Int16", 2,
			func(d []byte, le bool) float64 { return float64(int16(rd16(d, le))) },
			func(d []byte, v float64, le bool) { wr16(d, uint16(int64(v)), le) }},
		{"Uint16", 2,
			func(d []byte, le bool) float64 { return float64(rd16(d, le)) },
			func(d []byte, v float64, le bool) { wr16(d, uint16(int64(v)), le) }},
		{"Int32", 4,
			func(d []byte, le bool) float64 { return float64(int32(rd32(d, le))) },
			func(d []byte, v float64, le bool) { wr32(d, uint32(int64(v)), le) }},
		{"Uint32", 4,
			func(d []byte, le bool) float64 { return float64(rd32(d, le)) },
			func(d []byte, v float64, le bool) { wr32(d, uint32(int64(v)), le) }},
		{"Float32", 4,
			func(d []byte, le bool) float64 { return float64(math.Float32frombits(rd32(d, le))) },
			func(d []byte, v float64, le bool) { wr32(d, math.Float32bits(float32(v)), le) }},
		{"Float64", 8,
			func(d []byte, le bool) float64 { return math.Float64frombits(rd64(d, le)) },
			func(d []byte, v float64, le bool) { wr64(d, math.Float64bits(v), le) }},
	}

	for _, a := range accessors {
		a := a
		r.method(proto, "DataView.prototype.get"+a.name, 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
			o, err := thisDV(in, this, "DataView.prototype.get"+a.name)
			if err != nil {
				return interp.Undefined(), err
			}
			offF, err := in.ToInteger(arg(args, 0))
			if err != nil {
				return interp.Undefined(), err
			}
			le := interp.ToBoolean(arg(args, 1))
			off := jsnum.SafeInt(offF)
			if off < 0 || off+a.size > o.ArrayLen {
				return interp.Undefined(), in.RangeErrorf("Offset is outside the bounds of the DataView")
			}
			return interp.Number(a.get(o.Buf.Data[o.ByteOff+off:], le)), nil
		})
		r.method(proto, "DataView.prototype.set"+a.name, 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
			o, err := thisDV(in, this, "DataView.prototype.set"+a.name)
			if err != nil {
				return interp.Undefined(), err
			}
			offF, err := in.ToInteger(arg(args, 0))
			if err != nil {
				return interp.Undefined(), err
			}
			v, err := in.ToNumber(arg(args, 1))
			if err != nil {
				return interp.Undefined(), err
			}
			le := interp.ToBoolean(arg(args, 2))
			off := jsnum.SafeInt(offF)
			if off < 0 || off+a.size > o.ArrayLen {
				return interp.Undefined(), in.RangeErrorf("Offset is outside the bounds of the DataView")
			}
			a.put(o.Buf.Data[o.ByteOff+off:], v, le)
			return interp.Undefined(), nil
		})
	}
}
