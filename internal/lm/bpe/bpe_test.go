package bpe

import (
	"strings"
	"testing"
	"testing/quick"
)

func corpusWords() []string {
	text := "function function function var var return print print print " +
		"printable variable functional returning substring substr"
	return strings.Fields(text)
}

func TestTrainMergesFrequentPairs(t *testing.T) {
	v := Train(corpusWords(), 200)
	if v.NumMerges() == 0 {
		t.Fatal("no merges learned")
	}
	// Frequent whole words should become single tokens.
	if toks := v.EncodeWord("function"); len(toks) != 1 {
		t.Errorf("'function' should be one token, got %v", toks)
	}
	// Rare words decompose but reuse learned chunks.
	toks := v.EncodeWord("functionally")
	if len(toks) < 2 {
		t.Errorf("rare word should decompose: %v", toks)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	v := Train(corpusWords(), 100)
	for _, w := range append(corpusWords(), "zzz", "printf", "sub") {
		if got := Decode(v.EncodeWord(w)); got != w {
			t.Errorf("round trip %q -> %q", w, got)
		}
	}
}

// TestRoundTripProperty: any ASCII identifier round-trips.
func TestRoundTripProperty(t *testing.T) {
	v := Train(corpusWords(), 100)
	f := func(raw []byte) bool {
		var b strings.Builder
		for _, c := range raw {
			ch := 'a' + rune(c%26)
			b.WriteRune(ch)
		}
		w := b.String()
		if w == "" {
			return true
		}
		return Decode(v.EncodeWord(w)) == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestContinuationMarkers(t *testing.T) {
	v := Train(corpusWords(), 50)
	toks := v.EncodeWord("functionally")
	for i, tok := range toks {
		cont := IsContinued(tok)
		if i < len(toks)-1 && !cont {
			t.Errorf("inner token %q must carry continuation marker", tok)
		}
		if i == len(toks)-1 && cont {
			t.Errorf("final token %q must not carry continuation marker", tok)
		}
	}
}

// TestStripMatchesDecode pins the single-token decoder the pre-sized
// detokenizer relies on: Strip(tok) == Decode([tok]) for every vocabulary
// token, continued or not, and stripping is allocation-free.
func TestStripMatchesDecode(t *testing.T) {
	v := Train(corpusWords(), 100)
	for _, w := range append(corpusWords(), "functionally", "zz") {
		for _, tok := range v.EncodeWord(w) {
			if Strip(tok) != Decode([]string{tok}) {
				t.Errorf("Strip(%q)=%q != Decode=%q", tok, Strip(tok), Decode([]string{tok}))
			}
		}
	}
	toks := v.EncodeWord("functionally")
	if allocs := testing.AllocsPerRun(100, func() {
		for _, tok := range toks {
			_ = Strip(tok)
		}
	}); allocs != 0 {
		t.Errorf("Strip allocates %.1f objects, want 0", allocs)
	}
}

func TestDeterministicTraining(t *testing.T) {
	a := Train(corpusWords(), 100)
	b := Train(corpusWords(), 100)
	if a.Size() != b.Size() || a.NumMerges() != b.NumMerges() {
		t.Error("training must be deterministic")
	}
}
