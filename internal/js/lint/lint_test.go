package lint

import (
	"strings"
	"testing"
)

func TestValid(t *testing.T) {
	if !Valid(`var x = 1; print(x);`) {
		t.Error("valid program rejected")
	}
	if Valid(`var = 1;`) {
		t.Error("invalid program accepted")
	}
}

func TestWarnings(t *testing.T) {
	res := Check(`var unused = 1;
var o = {a: 1, a: 2};
function f() {
  return 1;
  print("never");
}
if (x = 5) { f(); }
var x;`)
	if !res.Valid {
		t.Fatalf("parse failed: %v", res.Err)
	}
	joined := strings.Join(res.Warnings, "\n")
	for _, want := range []string{"unused", "duplicate object key", "unreachable", "assignment in condition"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q warning in:\n%s", want, joined)
		}
	}
}

func TestCheckInvalid(t *testing.T) {
	res := Check(`for(;false;)`)
	if res.Valid || res.Err == nil {
		t.Error("invalid program must carry the parse error")
	}
}
