package jsnum

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func TestFormat(t *testing.T) {
	cases := map[float64]string{
		0:           "0",
		1:           "1",
		-1:          "-1",
		3.5:         "3.5",
		1e21:        "1e+21",
		1e-7:        "1e-7",
		123456789:   "123456789",
		0.1:         "0.1",
		1e20:        "100000000000000000000",
		-2.5:        "-2.5",
		1.5e-7:      "1.5e-7",
		math.Inf(1): "Infinity",
	}
	for in, want := range cases {
		if got := Format(in); got != want {
			t.Errorf("Format(%v) = %q want %q", in, got, want)
		}
	}
	if Format(math.NaN()) != "NaN" {
		t.Error("NaN format")
	}
	if Format(math.Copysign(0, -1)) != "0" {
		t.Error("negative zero must print as 0")
	}
}

func TestParse(t *testing.T) {
	cases := map[string]float64{
		"":          0,
		"  42  ":    42,
		"3.5":       3.5,
		"0x1f":      31,
		"0b101":     5,
		"0o17":      15,
		"-7":        -7,
		"1e3":       1000,
		"Infinity":  math.Inf(1),
		"-Infinity": math.Inf(-1),
	}
	for in, want := range cases {
		if got := Parse(in); got != want {
			t.Errorf("Parse(%q) = %v want %v", in, got, want)
		}
	}
	for _, bad := range []string{"abc", "1px", "0x", "--5", "1 2", "inf", "-0x10"} {
		if got := Parse(bad); !math.IsNaN(got) {
			t.Errorf("Parse(%q) = %v want NaN", bad, got)
		}
	}
}

// TestFormatParseRoundTrip: Parse(Format(x)) == x for finite values.
func TestFormatParseRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		got := Parse(Format(x))
		return got == x || (x == 0 && got == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestToInt32Uint32(t *testing.T) {
	if ToInt32(4294967296+5) != 5 {
		t.Error("ToInt32 wrap")
	}
	if ToInt32(-1) != -1 || ToUint32(-1) != 4294967295 {
		t.Error("negative conversions")
	}
	if ToInt32(math.NaN()) != 0 || ToUint32(math.Inf(1)) != 0 {
		t.Error("NaN/Inf conversions must be 0")
	}
	if ToInt32(2147483648) != -2147483648 {
		t.Error("int32 overflow wrap")
	}
}

// TestToUint32Property checks the modular identity on arbitrary floats.
func TestToUint32Property(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return ToUint32(x) == 0
		}
		u := ToUint32(x)
		// Adding 2^32 must not change the result.
		return ToUint32(math.Trunc(x)+4294967296) == ToUint32(math.Trunc(x)) && u == u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestToInteger(t *testing.T) {
	if ToInteger(3.9) != 3 || ToInteger(-3.9) != -3 {
		t.Error("truncation toward zero")
	}
	if ToInteger(math.NaN()) != 0 {
		t.Error("NaN → 0")
	}
	if !math.IsInf(ToInteger(math.Inf(1)), 1) {
		t.Error("Infinity preserved")
	}
}

func TestToLength(t *testing.T) {
	if ToLength(-5) != 0 || ToLength(10.7) != 10 {
		t.Error("clamping")
	}
	if ToLength(1e300) != 9007199254740991 {
		t.Error("max safe clamp")
	}
}

func TestFormatRadix(t *testing.T) {
	if FormatRadix(255, 16) != "ff" || FormatRadix(8, 2) != "1000" {
		t.Error("integer radix")
	}
	if FormatRadix(-2, 2) != "-10" {
		t.Error("negative radix")
	}
	if got := FormatRadix(0.5, 2); got != "0.1" {
		t.Errorf("fractional radix: %q", got)
	}
}

func TestSafeInt(t *testing.T) {
	if SafeInt(math.NaN()) != 0 {
		t.Error("NaN → 0")
	}
	if SafeInt(math.Inf(1)) != 1<<52 || SafeInt(math.Inf(-1)) != -(1<<52) {
		t.Error("infinity clamps")
	}
	if SafeInt(42.9) != 42 {
		t.Error("truncation")
	}
}

func TestFormatMatchesStrconvForIntegers(t *testing.T) {
	f := func(n int32) bool {
		return Format(float64(n)) == strconv.Itoa(int(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
