package campaign

import (
	"math/rand"
	"testing"

	"comfort/internal/difftest"
	"comfort/internal/engines"
	"comfort/internal/fuzzers"
	"comfort/internal/js/analyze"
)

// fixedFuzzer replays a fixed source list, one program per batch.
type fixedFuzzer struct {
	srcs []string
	i    int
}

func (f *fixedFuzzer) Name() string { return "fixed" }

func (f *fixedFuzzer) Next(*rand.Rand) []string {
	if f.i >= len(f.srcs) {
		return nil
	}
	f.i++
	return []string{f.srcs[f.i-1]}
}

// TestAnalyzeOracle is the differential oracle for the static-analysis
// layer: every program the six fuzzers generate from fixed seeds must
// produce byte-identical ExecResults — output, outcome, error rendering,
// fuel consumption and the early-error marker — whether the early-error
// verdict comes from the analyze-once cached report (the default) or is
// recomputed from the AST per execution (DisableAnalyze), across
// defect-laden and reference testbeds in both modes. Programs the analyzer
// statically rejects must additionally be rejected identically by every
// testbed — the soundness condition that lets the scheduler classify an
// early-error case from the reference testbed alone.
func TestAnalyzeOracle(t *testing.T) {
	tbs := oracleTestbeds()
	prepared := make([]*engines.PreparedTestbed, len(tbs))
	for i, tb := range tbs {
		prepared[i] = tb.Prepare()
	}
	opts := engines.RunOptions{Fuel: 150000, Seed: 9}
	noAnlz := opts
	noAnlz.DisableAnalyze = true
	earlyErrorProgs := 0
	checkOne := func(name string, ci int, src string) {
		var rejected, accepted int
		for _, p := range prepared {
			if msg := p.PreParseError(src); msg != "" {
				continue // identical gate in both modes
			}
			prog, perr := p.Parse(src)
			cached := p.ExecParsed(prog, perr, opts)
			fresh := p.ExecParsed(prog, perr, noAnlz)
			if cached.Semantics() != fresh.Semantics() {
				t.Fatalf("%s case %d on %s: analyze modes diverge\ncached: %+v\nfresh:  %+v\nprogram:\n%s",
					name, ci, p.Testbed.ID(), cached, fresh, src)
			}
			if perr != nil {
				continue
			}
			if rep := analyze.Of(prog); rep != nil && rep.Invalid() {
				if !cached.EarlyError {
					t.Fatalf("%s case %d on %s: analyzer reports %q but the testbed ran the program\nprogram:\n%s",
						name, ci, p.Testbed.ID(), rep.FirstError().Render(), src)
				}
				rejected++
			} else {
				accepted++
			}
		}
		// Soundness of reference-only classification: no program may be an
		// early error on one testbed and runnable on another.
		if rejected > 0 && accepted > 0 {
			t.Fatalf("%s case %d: early-error verdict differs across testbeds (%d reject, %d run)\nprogram:\n%s",
				name, ci, rejected, accepted, src)
		}
		if rejected > 0 {
			earlyErrorProgs++
		}
	}
	const perFuzzer = 25
	for fi, f := range fuzzers.All() {
		rng := rand.New(rand.NewSource(int64(100 + fi)))
		var cases []string
		for len(cases) < perFuzzer {
			batch := f.Next(rng)
			if len(batch) == 0 {
				break
			}
			cases = append(cases, batch...)
		}
		if len(cases) > perFuzzer {
			cases = cases[:perFuzzer]
		}
		for ci, src := range cases {
			checkOne(f.Name(), ci, src)
		}
	}
	// Fuzzer corpora are mostly statically valid, so drive the early-error
	// gate explicitly through the same cross-testbed check. (Bare
	// break/continue/return placement is the parser's job — these are the
	// rules only the analyzer sees.)
	for ci, src := range []string{
		"let a = 1; let a = 2; print(a);",
		"const c = 1; c = 2; print(c);",
		"x: { continue x; }",
		"x: x: while (true) { break; }",
		"try { print(1); } catch (e) { let e = 1; }",
		"for (let i = 0, i = 1; false; ) { }",
		"x: while (true) { break y; }",
		"function f(p) { let p = 1; } f(0);",
	} {
		checkOne("early-error-samples", ci, src)
	}
	if earlyErrorProgs < 8 {
		t.Fatalf("early-error gate exercised on only %d programs; the oracle lost its teeth", earlyErrorProgs)
	}
}

// TestCampaignAnalyzeOracle runs the same campaign with and without the
// static-analysis layer. The two runs must agree on every execution-side
// number — verdict tallies, executed grid, dedup and attribution counters,
// early-error cases — and the default run's findings must be exactly the
// DisableAnalyze run's findings minus the families it diverted to
// SuppressedNondet (witnesses carrying divergence-risk flags). Shared
// findings are byte-identical.
func TestCampaignAnalyzeOracle(t *testing.T) {
	// CodeAlchemist at this seed is the corpus whose witnesses include a
	// flagged-nondeterministic one, so the suppression diversion is
	// actually exercised (asserted below), not just vacuously equal.
	run := func(disable bool) *Result {
		return Run(Config{
			Fuzzer:         fuzzers.NewCodeAlchemist(),
			Testbeds:       engines.Testbeds(),
			Cases:          150,
			Seed:           2021,
			Workers:        4,
			DisableAnalyze: disable,
		})
	}
	on := run(false)
	off := run(true)
	if len(on.SuppressedNondet) == 0 {
		t.Errorf("corpus produced no suppressed findings; the suppression half of this oracle is vacuous")
	}

	// Execution-side accounting is analysis-independent.
	if on.CasesRun != off.CasesRun || on.Executed != off.Executed {
		t.Errorf("case accounting differs: (%d,%d) with analysis vs (%d,%d) without",
			on.CasesRun, on.Executed, off.CasesRun, off.Executed)
	}
	for v, n := range on.Verdicts {
		if off.Verdicts[v] != n {
			t.Errorf("verdict %s: %d with analysis vs %d without", v, n, off.Verdicts[v])
		}
	}
	if on.EarlyErrorCases != off.EarlyErrorCases {
		t.Errorf("early-error cases differ: %d with analysis vs %d without",
			on.EarlyErrorCases, off.EarlyErrorCases)
	}
	if on.DuplicatesFiltered != off.DuplicatesFiltered {
		t.Errorf("dedup differs: %d filtered with analysis vs %d without",
			on.DuplicatesFiltered, off.DuplicatesFiltered)
	}
	if on.UnattributedFindings != off.UnattributedFindings {
		t.Errorf("attribution differs: %d unattributed with analysis vs %d without",
			on.UnattributedFindings, off.UnattributedFindings)
	}

	// Found-on == Found-off minus exactly the suppressed IDs.
	for id, f := range on.Found {
		g, ok := off.Found[id]
		if !ok {
			t.Errorf("finding %s present with analysis but absent without", id)
			continue
		}
		if f.TestCase != g.TestCase || f.Engine != g.Engine || f.Verdict != g.Verdict {
			t.Errorf("finding %s differs between modes:\nwith:    %s %s %q\nwithout: %s %s %q",
				id, f.Engine, f.Verdict, f.TestCase, g.Engine, g.Verdict, g.TestCase)
		}
	}
	for id, f := range on.SuppressedNondet {
		if _, dup := on.Found[id]; dup {
			t.Errorf("finding %s is both reported and suppressed", id)
		}
		if _, ok := off.Found[id]; !ok {
			t.Errorf("suppressed finding %s absent from the DisableAnalyze run", id)
		}
		if len(f.Flags) == 0 {
			t.Errorf("suppressed finding %s carries no divergence-risk flags", id)
		}
	}
	for id := range off.Found {
		_, found := on.Found[id]
		_, suppressed := on.SuppressedNondet[id]
		if !found && !suppressed {
			t.Errorf("finding %s from the DisableAnalyze run is neither reported nor suppressed with analysis on", id)
		}
	}

	// Mode-specific counters point the right way.
	if on.Analyzed == 0 {
		t.Errorf("default campaign consulted no cached analysis reports")
	}
	if off.Analyzed != 0 {
		t.Errorf("DisableAnalyze campaign counted %d analyzed executions", off.Analyzed)
	}
	if len(off.SuppressedNondet) != 0 || off.FlaggedNondet != 0 {
		t.Errorf("DisableAnalyze campaign suppressed findings: %d (counter %d)",
			len(off.SuppressedNondet), off.FlaggedNondet)
	}
	if off.FeatureCounts != nil || off.FeaturesSeen != 0 {
		t.Errorf("DisableAnalyze campaign recorded feature fingerprints: %v", off.FeatureCounts)
	}
	if on.FeaturesSeen == 0 || len(on.FeatureCounts) == 0 {
		t.Errorf("default campaign recorded no feature fingerprints")
	}
	if int64(len(on.SuppressedNondet)) != on.FlaggedNondet {
		t.Errorf("FlaggedNondet counter %d does not match suppressed set size %d",
			on.FlaggedNondet, len(on.SuppressedNondet))
	}
}

// TestCampaignEarlyErrorAccounting pins that statically invalid programs
// are classified as invalid from the analyzer report alone: a fuzzer
// emitting only early-error programs yields a campaign where every case is
// an early-error invalid, no interpreter ran, and the early-skip counter
// saw every (behaviour-class) execution.
func TestCampaignEarlyErrorAccounting(t *testing.T) {
	srcs := []string{
		"let a = 1; let a = 2;",
		"const c = 1; c = 2;",
		"x: { continue x; }",
	}
	res := Run(Config{
		Fuzzer:   &fixedFuzzer{srcs: srcs},
		Testbeds: engines.Testbeds(),
		Cases:    len(srcs),
		Seed:     1,
		Workers:  2,
	})
	if res.EarlyErrorCases != len(srcs) {
		t.Fatalf("EarlyErrorCases = %d, want %d", res.EarlyErrorCases, len(srcs))
	}
	if res.EarlyErrorSkips == 0 {
		t.Fatalf("EarlyErrorSkips = 0; the gate never fired")
	}
	if res.Compiled != 0 || res.Fallback != 0 {
		t.Fatalf("interpreter ran on statically invalid programs: compiled=%d tree=%d",
			res.Compiled, res.Fallback)
	}
	if n := res.Verdicts[difftest.VerdictInvalid]; n != len(srcs) {
		t.Fatalf("invalid verdicts = %d, want %d (verdicts: %v)", n, len(srcs), res.Verdicts)
	}
}
