// Package exec is the execution scheduler for differential-testing
// campaigns. It schedules the (case × testbed) grid over a bounded worker
// pool, shares parses through a campaign-wide parse-once cache (keyed by
// source + parser-option fingerprint), honours context cancellation, and
// streams classified case results to the consumer in case order — so a
// campaign can account findings as they arrive instead of materialising
// every case and every result in memory first.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"comfort/internal/difftest"
	"comfort/internal/engines"
	"comfort/internal/faultinject"
	"comfort/internal/js/analyze"
	"comfort/internal/js/ast"
)

// Case is one fuzzer-generated test program, tagged with its position in
// the campaign's deterministic generation order. Batch/Off locate the case
// in the generator's batch structure (batch number and offset within it)
// so a checkpoint can record an exact generator restart position; serial
// generators stamp Batch = -1 and resume by index instead.
type Case struct {
	Index int
	Src   string
	Batch int
	Off   int
}

// Outcome is the classified result of one case across all testbeds.
// Entries are in testbed order (the scheduler's configured order), so the
// outcome is independent of worker interleaving.
type Outcome struct {
	Case
	Entries []difftest.ExecEntry
	Result  difftest.CaseResult
	// Analysis is the case's static-semantics report (divergence-risk
	// flags, feature fingerprint), shared from the parse cache. Nil when
	// the case failed to parse or the scheduler runs with DisableAnalyze —
	// the ablation's sink must see exactly the no-analyzer pipeline.
	Analysis *analyze.Report
}

// Config parameterises a scheduler.
type Config struct {
	Testbeds []engines.Testbed
	// Workers bounds concurrent testbed executions; <=0 means GOMAXPROCS.
	Workers int
	Fuel    int64
	Seed    int64
	// ParseCacheCap bounds the compiled-program cache's entry count; <=0
	// means the default (4096). Eviction is generational: when the young
	// generation fills, the old generation is dropped and the young one
	// ages — entries touched within the last generation survive, so a long
	// campaign never re-parses its entire live working set at once.
	ParseCacheCap int
	// DisableResolve keeps cached programs on the interpreter's dynamic
	// map-scope path instead of running the resolve-once pass after each
	// parse — the differential oracle and ablation knob for the
	// slot-indexed evaluator.
	DisableResolve bool
	// DisableCompile keeps cached programs on the (resolved) tree-walking
	// evaluator instead of the compile-once thunk path — the differential
	// oracle and ablation knob for internal/js/compile. Implied by
	// DisableResolve (the compiler consumes scope annotations).
	DisableCompile bool
	// DisableShapes keeps objects on dictionary-mode property maps and the
	// compiled evaluator's inline caches empty — the differential oracle
	// and ablation knob for the hidden-class object layout.
	DisableShapes bool
	// DisableAnalyze makes every execution recompute the early-error
	// verdict from the AST instead of reading the report the parse
	// pipeline cached on the program, and withholds Outcome.Analysis from
	// the sink — the differential oracle and ablation knob for
	// internal/js/analyze. Execution semantics are identical in both
	// modes; the sink-side flag accounting is what differs.
	DisableAnalyze bool
	// CaseDeadline, when positive, arms a wall-clock watchdog on every
	// physical execution: the interpreter probes Clock at its fuel-charge
	// site and aborts with a classified timeout once the deadline passes.
	// This is a robustness guard against pathological cases, not part of
	// the deterministic oracle — a firing deadline depends on machine
	// speed, which is why the deterministic fuel budget remains the
	// primary timeout axis and the deadline defaults to off.
	CaseDeadline time.Duration
	// Clock supplies wall time for CaseDeadline (the scheduler never calls
	// time.Now itself — determinism-sensitive callers inject nothing and
	// stay clock-free). Required when CaseDeadline > 0.
	Clock func() time.Time
	// Faults is the deterministic fault-injection plan, nil in production.
	// An injected fault targets exactly one behaviour class of its case so
	// the faulted execution deviates from the healthy majority and
	// surfaces as a finding.
	Faults *faultinject.Plan
	// Gate, when non-nil, is a shared execution-slot pool acquired around
	// every physical run — several schedulers in one process (the campaign
	// server's shared worker pool) bound their combined parallelism with
	// one Gate. Gating changes scheduling only, never outcomes: see
	// gate.go.
	Gate Gate
}

// Scheduler executes cases over prepared testbeds. One Scheduler is one
// campaign's worth of shared state (prepared testbeds, behaviour classes,
// parse cache); Run may be called once per input stream.
type Scheduler struct {
	cfg      Config
	prepared []*engines.PreparedTestbed
	// classes groups testbed indices by behaviour equivalence class: an
	// ExecResult is a pure function of (defect set, mode, fuel, seed, src),
	// so each class executes once per case and the result fans out to every
	// member. classRep[k] is the prepared testbed the class executes on.
	classes  [][]int
	classRep []*engines.PreparedTestbed
	cache    *parseCache
	// compiled/fallback count physical interpreter runs by evaluator:
	// thunk-compiled programs vs tree-walked ones (parse errors count in
	// neither). Surfaced through campaign.Progress so a campaign's oracle
	// coverage — how much of it actually exercised the compiled path — is
	// observable.
	compiled atomic.Int64
	fallback atomic.Int64
	// icHit/icMiss/icMega accumulate the per-execution inline-cache
	// counters the runs report, for campaign.Progress.
	icHit  atomic.Uint64
	icMiss atomic.Uint64
	icMega atomic.Uint64
	// analyzed counts class executions that consulted the analyze-once
	// report cached on the program; earlySkips counts executions the
	// early-error gate short-circuited before any interpreter ran.
	analyzed   atomic.Int64
	earlySkips atomic.Int64
	// panics/wallTimeouts count physical executions that ended in a
	// recovered evaluator panic or a wall-clock watchdog abort — the
	// robustness layer's visible pulse, surfaced through
	// campaign.Progress.
	panics       atomic.Int64
	wallTimeouts atomic.Int64
}

// New builds a scheduler: testbeds are prepared up front (catalog scan,
// hook chain, option resolution happen here, never per execution) and
// grouped into behaviour classes.
func New(cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Fuel == 0 {
		cfg.Fuel = difftest.DefaultFuel
	}
	if len(cfg.Testbeds) == 0 {
		cfg.Testbeds = engines.LatestTestbeds()
	}
	s := &Scheduler{cfg: cfg, cache: newParseCache(cfg.ParseCacheCap, cfg.DisableResolve, cfg.DisableCompile)}
	classOf := map[string]int{}
	for _, tb := range cfg.Testbeds {
		p := tb.Prepare()
		i := len(s.prepared)
		s.prepared = append(s.prepared, p)
		k, ok := classOf[p.BehaviorKey()]
		if !ok {
			k = len(s.classes)
			classOf[p.BehaviorKey()] = k
			s.classes = append(s.classes, nil)
			s.classRep = append(s.classRep, p)
		}
		s.classes[k] = append(s.classes[k], i)
	}
	return s
}

// Classes reports how many distinct behaviour classes the configured
// testbeds collapse into (of interest to benchmarks and progress output).
func (s *Scheduler) Classes() int { return len(s.classes) }

// CacheStats reports compiled-program cache hits, misses and evicted
// entries so far.
func (s *Scheduler) CacheStats() (hits, misses, evictions int64) { return s.cache.stats() }

// ExecCounts reports physical interpreter runs so far by evaluator path:
// thunk-compiled vs tree-walked (the fallback — ablation modes, or
// programs the compiler declined).
func (s *Scheduler) ExecCounts() (compiled, fallback int64) {
	return s.compiled.Load(), s.fallback.Load()
}

// ICStats reports the inline-cache hit / miss / megamorphic totals
// accumulated across all executions so far.
func (s *Scheduler) ICStats() (hit, miss, mega uint64) {
	return s.icHit.Load(), s.icMiss.Load(), s.icMega.Load()
}

// AnalyzeStats reports the analyze-once gate's activity so far: class
// executions that rode a cached report, and executions the early-error
// verdict short-circuited (the latter counts in both analyze modes).
func (s *Scheduler) AnalyzeStats() (analyzed, earlySkips int64) {
	return s.analyzed.Load(), s.earlySkips.Load()
}

// FaultStats reports physical executions that ended in a recovered
// evaluator panic and in a wall-clock watchdog abort (injected or real).
func (s *Scheduler) FaultStats() (panics, wallTimeouts int64) {
	return s.panics.Load(), s.wallTimeouts.Load()
}

// caseState tracks one in-flight case across its testbed executions.
type caseState struct {
	seq       int // receipt order; outcomes are emitted in this order
	c         Case
	entries   []difftest.ExecEntry
	remaining int32
	cancelled int32 // set when any execution was skipped due to cancellation
}

type task struct {
	cs    *caseState
	class int // index into Scheduler.classes
}

// Run consumes cases from in and returns a channel of outcomes, emitted in
// the order cases were received. The channel is closed when all input has
// been processed or ctx is cancelled; cancellation never deadlocks — all
// scheduler goroutines drain and exit. The emitted outcomes are always a
// contiguous prefix of the case sequence: once cancellation drops one
// case (or pre-empts one emission), no later case is emitted either, even
// if it happened to execute fully before the workers saw the cancel.
func (s *Scheduler) Run(ctx context.Context, in <-chan Case) <-chan Outcome {
	nTB := len(s.prepared)
	nCls := len(s.classes)
	inflight := s.cfg.Workers + 2
	out := make(chan Outcome)
	tasks := make(chan task, inflight*nCls)
	done := make(chan *caseState, inflight)
	sem := make(chan struct{}, inflight)

	// Intake: admit cases under the in-flight cap and fan each one out
	// into one task per testbed.
	go func() {
		defer close(tasks)
		seq := 0
		for {
			var c Case
			var ok bool
			select {
			case <-ctx.Done():
				return
			case c, ok = <-in:
				if !ok {
					return
				}
			}
			select {
			case <-ctx.Done():
				return
			case sem <- struct{}{}:
			}
			cs := &caseState{
				seq:       seq,
				c:         c,
				entries:   make([]difftest.ExecEntry, nTB),
				remaining: int32(nCls),
			}
			seq++
			for i := 0; i < nCls; i++ {
				// tasks is buffered for inflight full cases, so this send
				// only blocks when workers are saturated.
				tasks <- task{cs: cs, class: i}
			}
		}
	}()

	// Workers: the bounded execution pool.
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				if !s.acquireSlot(ctx) {
					atomic.StoreInt32(&t.cs.cancelled, 1)
				} else {
					r := s.runOne(t.class, t.cs.c)
					s.releaseSlot()
					for _, i := range s.classes[t.class] {
						t.cs.entries[i] = difftest.ExecEntry{
							Testbed: s.prepared[i].Testbed,
							Result:  r,
						}
					}
				}
				if atomic.AddInt32(&t.cs.remaining, -1) == 0 {
					// done is buffered to the in-flight cap, so this send
					// cannot block even after the collector has exited.
					done <- t.cs
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	// Collector: reorder completed cases into receipt order and classify.
	go func() {
		defer close(out)
		next := 0
		dropped := false
		pending := map[int]*caseState{}
		for cs := range done {
			pending[cs.seq] = cs
			for {
				c, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				<-sem
				if atomic.LoadInt32(&c.cancelled) != 0 {
					// A partially-executed case is dropped; later cases may
					// still complete (their tasks ran before cancellation
					// reached their worker), but emitting them would punch a
					// hole in the in-order stream — the emitted outcomes
					// must stay a contiguous prefix of the case sequence.
					dropped = true
				}
				if dropped {
					continue
				}
				oc := Outcome{Case: c.c, Entries: c.entries, Result: difftest.Classify(c.entries)}
				if !s.cfg.DisableAnalyze {
					oc.Analysis = s.analysisFor(c.c.Src)
				}
				select {
				case out <- oc:
				case <-ctx.Done():
					// The consumer may be gone; keep draining without
					// emitting so the workers can finish. This case can win
					// even while the consumer still listens, so stop
					// emitting altogether — the prefix contract again.
					dropped = true
				}
			}
		}
	}()
	return out
}

// acquireSlot gates one physical run: a cancelled context reports false
// (the case is marked cancelled, preserving the contiguous-prefix
// contract exactly as the pre-gate cancellation check did).
func (s *Scheduler) acquireSlot(ctx context.Context) bool {
	if ctx.Err() != nil {
		return false
	}
	if s.cfg.Gate == nil {
		return true
	}
	return s.cfg.Gate.Acquire(ctx) == nil
}

func (s *Scheduler) releaseSlot() {
	if s.cfg.Gate != nil {
		s.cfg.Gate.Release()
	}
}

// runOne executes one (case, behaviour class) cell through the shared
// difftest cell semantics, with the campaign-wide parse cache supplying
// compiled programs; the parse hook accounts which evaluator the
// execution runs on. Fault injection and the wall-clock watchdog are
// armed here, per physical run, so shared-class fan-out replicates the
// (deterministic) faulted result instead of re-rolling it.
func (s *Scheduler) runOne(class int, c Case) engines.ExecResult {
	p := s.classRep[class]
	opts := engines.RunOptions{Fuel: s.cfg.Fuel, Seed: s.cfg.Seed,
		DisableCompile: s.cfg.DisableCompile, DisableShapes: s.cfg.DisableShapes,
		DisableAnalyze: s.cfg.DisableAnalyze}
	if fault, sel := s.cfg.Faults.CaseFault(c.Index); fault != faultinject.FaultNone &&
		class == int(sel%uint64(len(s.classes))) {
		switch fault {
		case faultinject.FaultPanic:
			opts.InjectPanic = true
		case faultinject.FaultSlow:
			opts.Watchdog = faultinject.CountdownWatchdog(s.cfg.Faults.SlowProbes())
		}
	}
	if opts.Watchdog == nil && s.cfg.CaseDeadline > 0 && s.cfg.Clock != nil {
		start := s.cfg.Clock()
		deadline := s.cfg.CaseDeadline
		opts.Watchdog = func() bool { return s.cfg.Clock().Sub(start) > deadline }
	}
	r := difftest.RunCell(p, c.Src, s.countingParse, opts)
	if r.Panic {
		s.panics.Add(1)
	}
	if r.WallClock {
		s.wallTimeouts.Add(1)
	}
	if r.EarlyError {
		s.earlySkips.Add(1)
	}
	if r.ICHit != 0 {
		s.icHit.Add(r.ICHit)
	}
	if r.ICMiss != 0 {
		s.icMiss.Add(r.ICMiss)
	}
	if r.ICMega != 0 {
		s.icMega.Add(r.ICMega)
	}
	return r
}

// analysisFor fetches the case's static-semantics report through the
// parse cache (a hit for any case that just executed). The first class
// representative is the deterministic choice of parse fingerprint, so
// the report a sink sees never depends on worker interleaving.
func (s *Scheduler) analysisFor(src string) *analyze.Report {
	prog, err := s.cache.parse(s.classRep[0], src)
	if err != nil {
		return nil
	}
	return analyze.Of(prog)
}

// countingParse wraps the cache parse with the compiled/fallback
// execution counters (parse errors count in neither, and neither do
// programs the early-error gate stops before an evaluator runs).
func (s *Scheduler) countingParse(p *engines.PreparedTestbed, src string) (*ast.Program, error) {
	prog, err := s.cache.parse(p, src)
	if err == nil {
		rep := analyze.Of(prog)
		if !s.cfg.DisableAnalyze && rep != nil {
			s.analyzed.Add(1)
		}
		if rep.Invalid() {
			return prog, err
		}
		if prog.Compiled != nil && !s.cfg.DisableCompile {
			s.compiled.Add(1)
		} else {
			s.fallback.Add(1)
		}
	}
	return prog, err
}

// FromSlice adapts a fixed case list to the scheduler's input channel,
// indexing cases by position.
func FromSlice(ctx context.Context, srcs []string) <-chan Case {
	ch := make(chan Case)
	go func() {
		defer close(ch)
		for i, src := range srcs {
			select {
			case <-ctx.Done():
				return
			case ch <- Case{Index: i, Src: src, Batch: -1, Off: i}:
			}
		}
	}()
	return ch
}

// ---------- compiled-program (parse-and-resolve-once) cache ----------

type parseKey struct {
	fp  uint64
	src string
}

type parsedResult struct {
	prog *ast.Program
	err  error
}

// parseCache shares compiled programs — parsed and scope-resolved ASTs —
// between the testbeds (and cases) whose resolved parser options coincide.
// Sharing the *ast.Program across concurrent interpreter runs is safe
// because execution never mutates the tree; the resolve pass runs exactly
// once, before the program is published.
//
// Eviction is generational: entries are inserted into a young generation,
// and when it reaches half the configured cap the old generation's entries
// are discarded while the young generation ages in their place. A hit in
// the old generation promotes the entry back to young. Total residency
// stays bounded by cap, but — unlike the previous wholesale reset — the
// working set a long campaign touched within the last generation survives
// every eviction, so the scheduler never stalls re-parsing everything at
// once.
type parseCache struct {
	mu        sync.RWMutex
	young     map[parseKey]parsedResult
	old       map[parseKey]parsedResult
	genCap    int
	noResolve bool
	noCompile bool
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

const defaultParseCacheCap = 4096

func newParseCache(cap int, noResolve, noCompile bool) *parseCache {
	if cap <= 0 {
		cap = defaultParseCacheCap
	}
	genCap := cap / 2
	if genCap < 1 {
		genCap = 1
	}
	return &parseCache{
		young:     make(map[parseKey]parsedResult),
		old:       make(map[parseKey]parsedResult),
		genCap:    genCap,
		noResolve: noResolve,
		noCompile: noCompile,
	}
}

func (pc *parseCache) parse(p *engines.PreparedTestbed, src string) (*ast.Program, error) {
	key := parseKey{fp: p.ParseFingerprint(), src: src}
	pc.mu.RLock()
	r, inYoung := pc.young[key]
	ok := inYoung
	if !ok {
		r, ok = pc.old[key]
	}
	pc.mu.RUnlock()
	if ok {
		pc.hits.Add(1)
		if !inYoung {
			// Old-generation hit: promote so the entry survives the next
			// rotation, and remove the aged copy so it is not counted as
			// an eviction later. The write lock is brief and only taken
			// while the working set re-warms after a rotation.
			pc.mu.Lock()
			if _, dup := pc.young[key]; !dup {
				delete(pc.old, key)
				pc.insertLocked(key, r)
			}
			pc.mu.Unlock()
		}
		return r.prog, r.err
	}
	pc.misses.Add(1)
	switch {
	case pc.noResolve:
		r.prog, r.err = p.ParseUnresolved(src)
	case pc.noCompile:
		r.prog, r.err = p.ParseResolved(src)
	default:
		// The full pipeline: parse, resolve, thunk-compile. The cache
		// entry stores the thunks next to the scope annotations under the
		// same parser-option fingerprint key.
		r.prog, r.err = p.Parse(src)
	}
	pc.mu.Lock()
	pc.insertLocked(key, r)
	pc.mu.Unlock()
	return r.prog, r.err
}

// insertLocked adds an entry to the young generation, rotating the
// generations when young is full. Callers hold mu.
func (pc *parseCache) insertLocked(key parseKey, r parsedResult) {
	if len(pc.young) >= pc.genCap {
		pc.evictions.Add(int64(len(pc.old)))
		pc.old = pc.young
		pc.young = make(map[parseKey]parsedResult, pc.genCap)
	}
	pc.young[key] = r
}

func (pc *parseCache) stats() (hits, misses, evictions int64) {
	return pc.hits.Load(), pc.misses.Load(), pc.evictions.Load()
}
