// Package lm assembles the program generator of the paper's Section 3.2:
// code tokenisation, BPE subword encoding, a long-context language model
// (the GPT-2 substitute), and top-k sampling with the paper's termination
// conditions (bracket balance, <EOF>, 5,000-token cap).
package lm

import (
	"math/rand"
	"strings"

	"comfort/internal/lm/bpe"
	"comfort/internal/lm/ngram"
)

// Arch selects the model family; the architectural difference is context
// length, which is exactly the property the paper contrasts.
type Arch int

// Model architectures.
const (
	// ArchGPT2 is the long-context Transformer substitute (order 8).
	ArchGPT2 Arch = iota
	// ArchLSTM is the short-context RNN substitute used by the DeepSmith
	// and Montage baselines (order 2).
	ArchLSTM
)

func (a Arch) order() int {
	if a == ArchLSTM {
		return 2
	}
	return 8
}

func (a Arch) String() string {
	if a == ArchLSTM {
		return "lstm"
	}
	return "gpt2"
}

// Generator is a trained code generator.
type Generator struct {
	arch    Arch
	vocab   *bpe.Vocab
	model   *ngram.Model
	headers []string
	topK    int
	// MaxTokens is the generation cap (the paper's 5,000-word limit).
	MaxTokens int
}

// Config parameterises training.
type Config struct {
	Arch      Arch
	TopK      int // 0 = the paper's k=10
	NumMerges int // BPE merges; 0 = 400
}

// Train builds a generator from a corpus of programs plus seed headers.
func Train(programs, headers []string, cfg Config) *Generator {
	if cfg.TopK == 0 {
		cfg.TopK = 10
	}
	if cfg.NumMerges == 0 {
		cfg.NumMerges = 400
	}
	// Collect identifier-like words for the BPE vocabulary.
	var words []string
	for _, p := range programs {
		for _, tok := range TokenizeCode(p) {
			if isWordToken(tok) {
				words = append(words, tok)
			}
		}
	}
	vocab := bpe.Train(words, cfg.NumMerges)
	model := ngram.New(cfg.Arch.order())
	for _, p := range programs {
		stream := encode(vocab, TokenizeCode(p))
		stream = append(stream, "<EOF>")
		model.Train(stream)
	}
	return &Generator{
		arch:      cfg.Arch,
		vocab:     vocab,
		model:     model,
		headers:   headers,
		topK:      cfg.TopK,
		MaxTokens: 5000,
	}
}

// Vocab exposes the trained BPE vocabulary.
func (g *Generator) Vocab() *bpe.Vocab { return g.vocab }

// Contexts reports the number of learned generation contexts.
func (g *Generator) Contexts() int { return g.model.Contexts() }

// Generate produces one synthetic program, primed with a random seed
// header. Generation stops when the braces opened by the header are
// balanced again, when the model emits <EOF>, or at the token cap.
func (g *Generator) Generate(rng *rand.Rand) string {
	header := g.headers[rng.Intn(len(g.headers))]
	return g.GenerateFrom(header, rng)
}

// GenerateFrom produces a program from an explicit seed header.
func (g *Generator) GenerateFrom(header string, rng *rand.Rand) string {
	stream := encode(g.vocab, TokenizeCode(header))
	depth := braceDepth(stream, 0)
	sawBrace := strings.Contains(header, "{")
	for len(stream) < g.MaxTokens {
		tok, ok := g.model.Sample(stream, g.topK, rng)
		if !ok || tok == "<EOF>" {
			break
		}
		stream = append(stream, tok)
		switch tok {
		case "{":
			depth++
			sawBrace = true
		case "}":
			depth--
			if sawBrace && depth <= 0 {
				return detokenize(stream) + trailerFor(header)
			}
		}
	}
	return detokenize(stream)
}

// trailerFor closes the idiom the seed header opened: function-expression
// headers get invoked, declarations get called by name when obvious.
func trailerFor(header string) string {
	h := strings.TrimSpace(header)
	if strings.HasPrefix(h, "var ") && strings.Contains(h, "= function") {
		name := strings.TrimPrefix(h, "var ")
		if i := strings.IndexAny(name, " ="); i > 0 {
			name = name[:i]
		}
		return ";\n" + name + "();\n"
	}
	if strings.HasPrefix(h, "function ") {
		name := strings.TrimPrefix(h, "function ")
		if i := strings.IndexAny(name, " ("); i > 0 {
			name = name[:i]
		}
		if !strings.Contains(h, ",") && strings.Contains(h, "()") {
			return "\n" + name + "();\n"
		}
		return "\n"
	}
	return "\n"
}

func braceDepth(tokens []string, start int) int {
	d := start
	for _, t := range tokens {
		switch t {
		case "{":
			d++
		case "}":
			d--
		}
	}
	return d
}

// ---------- code tokenisation ----------

// TokenizeCode splits source into the generation alphabet: words, numbers,
// string/regex-ish literals, punctuation, and explicit space/newline tokens
// so that decoding reproduces layout.
func TokenizeCode(src string) []string {
	var out []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			out = append(out, "\n")
			i++
		case c == ' ' || c == '\t' || c == '\r':
			j := i
			for j < len(src) && (src[j] == ' ' || src[j] == '\t' || src[j] == '\r') {
				j++
			}
			out = append(out, " ")
			i = j
		case isWordStart(c):
			j := i
			for j < len(src) && isWordPart(src[j]) {
				j++
			}
			out = append(out, src[i:j])
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (isWordPart(src[j]) || src[j] == '.') {
				j++
			}
			out = append(out, src[i:j])
			i = j
		case c == '"' || c == '\'':
			j := i + 1
			for j < len(src) && src[j] != c {
				if src[j] == '\\' {
					j++
				}
				j++
			}
			if j < len(src) {
				j++
			}
			out = append(out, src[i:j])
			i = j
		default:
			out = append(out, string(c))
			i++
		}
	}
	return out
}

func isWordStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isWordPart(c byte) bool {
	return isWordStart(c) || (c >= '0' && c <= '9')
}

func isWordToken(tok string) bool {
	return len(tok) > 0 && isWordStart(tok[0])
}

// encode expands word tokens into BPE subwords; everything else passes
// through verbatim.
func encode(v *bpe.Vocab, tokens []string) []string {
	var out []string
	for _, t := range tokens {
		if isWordToken(t) && len(t) > 1 {
			out = append(out, v.EncodeWord(t)...)
		} else {
			out = append(out, t)
		}
	}
	return out
}

// detokenize re-joins a BPE/code token stream into source text.
func detokenize(tokens []string) string {
	var b strings.Builder
	for _, t := range tokens {
		if bpe.IsContinued(t) {
			b.WriteString(bpe.Decode([]string{t}))
			continue
		}
		b.WriteString(t)
	}
	return b.String()
}
