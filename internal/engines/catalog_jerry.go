package engines

import (
	"math"
	"strings"

	"comfort/internal/js/interp"
	"comfort/internal/js/jsnum"
	"comfort/internal/js/parser"
)

// jerryScript seeds the 35 JerryScript defects (35/31/31/3). JerryScript,
// like Rhino, grew ES2015 support late; v2.2.0 carries the bulk of the
// conformance regressions (Table 3).
func (b *catalogBuilder) jerryScript() {
	// ---- v1.0: 1 verified/fixed/new ----
	b.add(&Defect{
		ID: "je-001", Engine: "JerryScript", AttrVersion: "v1.0",
		Component: CodeGen, APIType: "other", API: "Math.floor",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "Math.floor(-0) returns +0 instead of -0",
		Witness: `print(1 / Math.floor(-0));`,
		Hook: onAPI("Math.floor", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindNumber &&
				ctx.Args[0].Num() == 0 && math.Signbit(ctx.Args[0].Num())
		}, ret(interp.Number(0))),
	})

	// ---- v2.0: 8 submitted (7 verified+fixed+new, 1 unverified) ----
	// Listing 12 (JerryScript variant).
	b.add(&Defect{
		ID: "je-002", Engine: "JerryScript", AttrVersion: "v2.0",
		Component: RegexEngine, APIType: "other", API: "RegExp.prototype.compile",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note: "Listing 12 (JerryScript variant): compile ignores non-writable lastIndex",
		Witness: `var re = new RegExp(/xyz/);
Object.defineProperty(re, "lastIndex", {value: 3, writable: false});
re.compile("q");
print(re.lastIndex);`,
		Hook: onAPI("RegExp.prototype.compile", nil,
			func(ctx *interp.HookCtx) *interp.Override {
				this := ctx.This
				return &interp.Override{Post: func(res interp.Value, err error) (interp.Value, error) {
					if _, isThrow := interp.IsThrow(err); isThrow {
						return this, nil
					}
					return res, err
				}}
			}),
	})
	b.add(&Defect{
		ID: "je-003", Engine: "JerryScript", AttrVersion: "v2.0",
		Component: CodeGen, APIType: "String", API: "String.prototype.substring",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "substring treats negative starts as slice does (from the end)",
		Witness: `print("hello".substring(-2));`,
		Hook: onAPI("String.prototype.substring", argNeg(0),
			retFn(func(ctx *interp.HookCtx) interp.Value {
				s := []rune(ctx.This.Str())
				start := len(s) + int(ctx.Args[0].Num())
				if start < 0 {
					start = 0
				}
				return interp.String(string(s[start:]))
			})),
	})
	b.add(&Defect{
		ID: "je-004", Engine: "JerryScript", AttrVersion: "v2.0",
		Component: CodeGen, APIType: "Array", API: "Array.prototype.push",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "push returns the array instead of the new length",
		Witness: `print([1].push(2));`,
		Hook: onAPI("Array.prototype.push", nil,
			mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
				return ctx.This
			})),
	})
	b.add(&Defect{
		ID: "je-005", Engine: "JerryScript", AttrVersion: "v2.0",
		Component: CodeGen, APIType: "other", API: "String",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "String() with no arguments returns \"undefined\"",
		Witness: `print("[" + String() + "]");`,
		Hook:    onAPI("String", noArgs(), ret(interp.String("undefined"))),
	})
	b.add(&Defect{
		ID: "je-006", Engine: "JerryScript", AttrVersion: "v2.0",
		Component: Implementation, APIType: "Object", API: "Object.defineProperty",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "defineProperty on a primitive returns it instead of throwing TypeError",
		Witness: `print(Object.defineProperty("s", "x", {value: 1}));`,
		Hook: onAPI("Object.defineProperty", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && !ctx.Args[0].IsObject()
		}, func(ctx *interp.HookCtx) *interp.Override {
			arg := interp.Undefined()
			if len(ctx.Args) > 0 {
				arg = ctx.Args[0]
			}
			return &interp.Override{Replace: true, Return: arg}
		}),
	})
	b.add(&Defect{
		ID: "je-007", Engine: "JerryScript", AttrVersion: "v2.0",
		Component: Implementation, APIType: "Number", API: "Number.prototype.toString",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, Test262: true, New: true,
		Note:    "toString(2) of negative numbers prints the unsigned two's complement",
		Witness: `print((-2).toString(2));`,
		Hook: onAPI("Number.prototype.toString", func(ctx *interp.HookCtx) bool {
			if len(ctx.Args) == 0 || ctx.Args[0].Kind() != interp.KindNumber || ctx.Args[0].Num() != 2 {
				return false
			}
			if ctx.This.Kind() == interp.KindNumber {
				return ctx.This.Num() < 0
			}
			return ctx.This.IsObject() && ctx.This.Obj().HasPrim && ctx.This.Obj().Prim.Num() < 0
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			n := ctx.This.Num()
			if ctx.This.IsObject() {
				n = ctx.This.Obj().Prim.Num()
			}
			return interp.String(jsnum.FormatRadix(float64(jsnum.ToUint32(n)), 2))
		})),
	})
	b.add(&Defect{
		ID: "je-008", Engine: "JerryScript", AttrVersion: "v2.0",
		Component: ParserComp, APIType: "other", API: "parser",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:     "parser rejects 0o octal integer literals",
		Witness:  `print(0o17);`,
		PreParse: rejectSource("0o", "invalid octal literal"),
	})
	b.add(&Defect{
		ID: "je-009", Engine: "JerryScript", AttrVersion: "v2.0",
		Component: Implementation, APIType: "Array", API: "Array.prototype.slice",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note: "slice() with no arguments returns the receiver, not a copy",
		Witness: `var a = [1, 2];
var b2 = a.slice();
b2[0] = 9;
print(a[0]);`,
		Hook: onAPI("Array.prototype.slice", noArgs(),
			retFn(func(ctx *interp.HookCtx) interp.Value { return ctx.This })),
	})

	// ---- v2.1.0: 6 submitted (5 verified+fixed, 1 unverified) ----
	b.add(&Defect{
		ID: "je-010", Engine: "JerryScript", AttrVersion: "v2.1.0",
		Component: CodeGen, APIType: "String", API: "String.prototype.split",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "split drops empty fields between adjacent separators",
		Witness: `print("a,,b".split(",").length);`,
		Hook: onAPI("String.prototype.split", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString &&
				ctx.Args[0].Str() != "" && ctx.This.Kind() == interp.KindString &&
				strings.Contains(ctx.This.Str(), ctx.Args[0].Str()+ctx.Args[0].Str())
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			arr := ctx.In.NewArray(nil)
			for _, part := range strings.Split(ctx.This.Str(), ctx.Args[0].Str()) {
				if part != "" {
					arr.AppendElem(interp.String(part))
				}
			}
			return interp.ObjValue(arr)
		})),
	})
	b.add(&Defect{
		ID: "je-011", Engine: "JerryScript", AttrVersion: "v2.1.0",
		Component: CodeGen, APIType: "other", API: "Array",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "Array(n) as a function call ignores the length argument",
		Witness: `print(Array(3).length);`,
		Hook: onAPI("Array", argNumber(0, func(f float64) bool { return f > 0 }),
			retFn(func(ctx *interp.HookCtx) interp.Value {
				return interp.ObjValue(ctx.In.NewArray(nil))
			})),
	})
	b.add(&Defect{
		ID: "je-012", Engine: "JerryScript", AttrVersion: "v2.1.0",
		Component: Implementation, APIType: "Date", API: "Date.parse",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "Date.parse rejects ISO 8601 date-time strings",
		Witness: `print(isNaN(Date.parse("2020-01-01T00:00:00Z")));`,
		Hook: onAPI("Date.parse", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString &&
				strings.Contains(ctx.Args[0].Str(), "T")
		}, ret(interp.Number(math.NaN()))),
	})
	b.add(&Defect{
		ID: "je-013", Engine: "JerryScript", AttrVersion: "v2.1.0",
		Component: Implementation, APIType: "Object", API: "Object.prototype.hasOwnProperty",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: false,
		Note:    "hasOwnProperty always false for array indices",
		Witness: `print([1].hasOwnProperty(0));`,
		Hook: onAPI("Object.prototype.hasOwnProperty", func(ctx *interp.HookCtx) bool {
			return ctx.This.IsObject() && ctx.This.Obj().IsArray() && len(ctx.Args) > 0 &&
				ctx.Args[0].Kind() == interp.KindNumber
		}, ret(interp.Bool(false))),
	})
	b.add(&Defect{
		ID: "je-014", Engine: "JerryScript", AttrVersion: "v2.1.0",
		Component: StrictModeComp, APIType: "other", API: "parser",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		WitnessStrict: true,
		Note:          "strict mode: delete of an unqualified identifier accepted",
		Witness:       `"use strict"; var x = 1; print(delete x);`,
		ParserOpts:    func(o *parser.Options) { o.AllowSloppyDelete = true },
	})
	b.add(&Defect{
		ID: "je-015", Engine: "JerryScript", AttrVersion: "v2.1.0",
		Component: Implementation, APIType: "DataView", API: "new DataView",
		Channel: ChannelSpecData, Verified: false, DevFixed: false, New: false,
		Note:    "DataView.byteOffset reports the byteLength",
		Witness: `print(new DataView(new ArrayBuffer(8), 2).byteOffset);`,
		Hook: onAPI("new DataView", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 1
		}, mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
			if res.IsObject() && res.Obj().Class == "DataView" {
				res.Obj().SetSlot("byteOffset", interp.Number(float64(res.Obj().ArrayLen)), 0)
			}
			return res
		})),
	})

	// ---- v2.2.0: 18 submitted (16 verified+fixed, 2 unverified) ----
	// Listing 8: the regex split anchor bug, added to Test262.
	b.add(&Defect{
		ID: "je-016", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: RegexEngine, APIType: "other", API: "String.prototype.split",
		Channel: ChannelGen, Verified: true, DevFixed: true, Test262: true, New: true,
		Note: "Listing 8: ^ anchor honoured mid-string when splitting",
		Witness: `var foo = function() {
  var a = "anA".split(/^A/);
  print(a);
};
foo();`,
		Hook: anchorAnywhere("String.prototype.split"),
	})
	b.add(&Defect{
		ID: "je-017", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: RegexEngine, APIType: "other", API: "RegExp.prototype.test",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "multiline ^ fails to match after \\r line terminators",
		Witness: `print(/^b/m.test("a\rb"));`,
		Hook: onRegex("RegExp.prototype.test", func(pattern, flags string) bool {
			return strings.Contains(flags, "m") && strings.HasPrefix(pattern, "^")
		}, func(ctx *interp.HookCtx) *interp.Override {
			if len(ctx.Args) > 0 && strings.Contains(ctx.Args[0].Str(), "\r") {
				return &interp.Override{Replace: true, Return: interp.Undefined()}
			}
			return nil
		}),
	})
	b.add(&Defect{
		ID: "je-018", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: CodeGen, APIType: "String", API: "String.prototype.padStart",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, Test262: true, New: true,
		Note:    "padStart(NaN) pads to length 3 instead of 0",
		Witness: `print("x".padStart(NaN));`,
		Hook: onAPI("String.prototype.padStart", argNaN(0),
			retFn(func(ctx *interp.HookCtx) interp.Value {
				s := ctx.This.Str()
				for len(s) < 3 {
					s = " " + s
				}
				return interp.String(s)
			})),
	})
	b.add(&Defect{
		ID: "je-019", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: CodeGen, APIType: "String", API: "String.prototype.concat",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "concat ignores arguments beyond the first",
		Witness: `print("a".concat("b", "c"));`,
		Hook: onAPI("String.prototype.concat", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 1
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			first := ""
			if len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString {
				first = ctx.Args[0].Str()
			}
			return interp.String(ctx.This.Str() + first)
		})),
	})
	b.add(&Defect{
		ID: "je-020", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: Implementation, APIType: "Object", API: "Object.freeze",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "Object.freeze returns undefined instead of the object",
		Witness: `print(Object.freeze({}) === undefined);`,
		Hook: onAPI("Object.freeze", nil,
			mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
				return interp.Undefined()
			})),
	})
	b.add(&Defect{
		ID: "je-021", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: Implementation, APIType: "Object", API: "Object.create",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "Object.create ignores the property-descriptor argument",
		Witness: `print(Object.create({}, {x: {value: 5}}).x);`,
		Hook: onAPI("Object.create", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 1 && ctx.Args[1].IsObject()
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			var proto *interp.Object
			if ctx.Args[0].IsObject() {
				proto = ctx.Args[0].Obj()
			}
			return interp.ObjValue(interp.NewObject(proto))
		})),
	})
	b.add(&Defect{
		ID: "je-022", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: CodeGen, APIType: "Array", API: "Array.prototype.indexOf",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "indexOf with a negative fromIndex always returns -1",
		Witness: `print([1, 2, 3].indexOf(3, -1));`,
		Hook:    onAPI("Array.prototype.indexOf", argNeg(1), ret(interp.Number(-1))),
	})
	b.add(&Defect{
		ID: "je-023", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: Implementation, APIType: "TypedArray", API: "new Uint8ClampedArray",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "Uint8ClampedArray truncates instead of rounding to nearest",
		Witness: `print(new Uint8ClampedArray([2.6])[0]);`,
		Hook: onAPI("new Uint8ClampedArray", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].IsObject() && ctx.Args[0].Obj().IsArray()
		}, mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
			if res.IsObject() && res.Obj().ElemKind == interp.ElemUint8Clamped {
				src := ctx.Args[0].Obj().ArrayElems()
				for i := 0; i < res.Obj().ArrayLen && i < len(src); i++ {
					if src[i].Kind() == interp.KindNumber {
						res.Obj().TypedSet(i, math.Trunc(src[i].Num()))
					}
				}
			}
			return res
		})),
	})
	b.add(&Defect{
		ID: "je-024", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: Implementation, APIType: "JSON", API: "JSON.stringify",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: false,
		Note:    "JSON.stringify(undefined) returns the string \"undefined\"",
		Witness: `print(typeof JSON.stringify(undefined));`,
		Hook:    onAPI("JSON.stringify", argMissingOrUndef(0), ret(interp.String("undefined"))),
	})
	b.add(&Defect{
		ID: "je-025", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: Implementation, APIType: "other", API: "parseInt",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "parseInt ignores the radix argument",
		Witness: `print(parseInt("11", 2));`,
		Hook: onAPI("parseInt", argNumber(1, func(f float64) bool { return f == 2 }),
			retFn(func(ctx *interp.HookCtx) interp.Value {
				return interp.Number(jsnum.Parse(strings.TrimSpace(ctx.Args[0].Str())))
			})),
	})
	b.add(&Defect{
		ID: "je-026", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: Implementation, APIType: "other", API: "Math.sign",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "Math.sign returns booleans",
		Witness: `print(Math.sign(-5));`,
		Hook: onAPI("Math.sign", argNumber(0, func(f float64) bool { return f != 0 && !math.IsNaN(f) }),
			retFn(func(ctx *interp.HookCtx) interp.Value {
				return interp.Bool(ctx.Args[0].Num() > 0)
			})),
	})
	b.add(&Defect{
		ID: "je-028", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: CodeGen, APIType: "other", API: "Number",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "Number(\"\") returns NaN instead of 0",
		Witness: `print(Number(""));`,
		Hook: onAPI("Number", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString && ctx.Args[0].Str() == ""
		}, ret(interp.Number(math.NaN()))),
	})
	b.add(&Defect{
		ID: "je-029", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: ParserComp, APIType: "other", API: "parser",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:     "parser rejects let declarations in for-of heads",
		Witness:  `for (let v of [1]) print(v);`,
		PreParse: rejectSource("for (let", "let is not supported in for statements"),
	})
	b.add(&Defect{
		ID: "je-030", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: ParserComp, APIType: "other", API: "parser",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:     "parser rejects nullish coalescing",
		Witness:  `print(null ?? "fallback");`,
		PreParse: rejectSource("??", "unexpected token '?'"),
	})
	b.add(&Defect{
		ID: "je-031", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: ParserComp, APIType: "other", API: "parser",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:       "parser accepts reserved words as identifiers",
		Witness:    `var class = 5; print(class);`,
		ParserOpts: func(o *parser.Options) { o.AllowReservedIdent = true },
	})
	b.add(&Defect{
		ID: "je-032", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: StrictModeComp, APIType: "other", API: "parser",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		WitnessStrict: true,
		Note:          "strict mode: assignment to arguments accepted",
		Witness:       `"use strict"; function f() { arguments = 5; return arguments; } print(f());`,
		ParserOpts:    func(o *parser.Options) { o.AllowEvalArgumentsAssign = true },
	})
	b.add(&Defect{
		ID: "je-033", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: Implementation, APIType: "Array", API: "Array.prototype.join",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note:    "join with an undefined separator uses the string \"undefined\"",
		Witness: `print([1, 2].join(undefined));`,
		Hook: onAPI("Array.prototype.join", argUndef(0),
			retFn(func(ctx *interp.HookCtx) interp.Value {
				if !ctx.This.IsObject() || !ctx.This.Obj().IsArray() {
					return interp.String("")
				}
				var parts []string
				for _, e := range ctx.This.Obj().ArrayElems() {
					if e.Kind() == interp.KindNumber {
						parts = append(parts, jsnum.Format(e.Num()))
					} else if e.Kind() == interp.KindString {
						parts = append(parts, e.Str())
					} else {
						parts = append(parts, "")
					}
				}
				return interp.String(strings.Join(parts, "undefined"))
			})),
	})
	b.add(&Defect{
		ID: "je-034", Engine: "JerryScript", AttrVersion: "v2.2.0",
		Component: CodeGen, APIType: "other", API: "Math.cbrt",
		Channel: ChannelSpecData, Verified: false, DevFixed: false, New: false,
		Note:    "Math.cbrt(27) is off by 1 ULP",
		Witness: `print(Math.cbrt(27) === 3);`,
		Hook: onAPI("Math.cbrt", argNumber(0, func(f float64) bool { return f == 27 }),
			ret(interp.Number(3.0000000000000004))),
	})

	// ---- v2.3.0: 2 verified/fixed/new ----
	b.add(&Defect{
		ID: "je-035", Engine: "JerryScript", AttrVersion: "v2.3.0",
		Component: CodeGen, APIType: "other", API: "Math.imul",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "Math.imul returns the unwrapped float product",
		Witness: `print(Math.imul(65537, 65537));`,
		Hook: onAPI("Math.imul", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 1 && ctx.Args[0].Kind() == interp.KindNumber &&
				ctx.Args[1].Kind() == interp.KindNumber &&
				math.Abs(ctx.Args[0].Num()*ctx.Args[1].Num()) > 2147483647
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			return interp.Number(ctx.Args[0].Num() * ctx.Args[1].Num())
		})),
	})
	b.add(&Defect{
		ID: "je-036", Engine: "JerryScript", AttrVersion: "v2.3.0",
		Component: Implementation, APIType: "other", API: "parseFloat",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "parseFloat(\".5\") returns NaN",
		Witness: `print(parseFloat(".5"));`,
		Hook: onAPI("parseFloat", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString &&
				strings.HasPrefix(strings.TrimSpace(ctx.Args[0].Str()), ".")
		}, ret(interp.Number(math.NaN()))),
	})
}
