package campaign

import (
	"context"
	"strings"
	"testing"
	"time"

	"comfort/internal/difftest"
	"comfort/internal/engines"
	"comfort/internal/exec"
	"comfort/internal/fuzzers"
)

// TestComfortCampaignFindsSeededBugs runs a small COMFORT campaign over the
// bug-richest testbeds and checks that it discovers seeded defects across
// several engines — the end-to-end property behind every table.
func TestComfortCampaignFindsSeededBugs(t *testing.T) {
	// Seed re-pinned when the sharded generation scheme replaced the
	// sequential RNG (the stream is a different — equally valid — sample
	// from the same generator; this seed keeps a comfortable margin over
	// the assertion thresholds).
	res := Run(Config{
		Fuzzer:   fuzzers.NewComfort(),
		Testbeds: figure8Testbeds(),
		Cases:    300,
		Seed:     2,
	})
	if len(res.Found) < 5 {
		t.Fatalf("expected at least 5 seeded defects found, got %d", len(res.Found))
	}
	enginesHit := map[string]bool{}
	for _, f := range res.Found {
		enginesHit[f.Defect.Engine] = true
	}
	if len(enginesHit) < 3 {
		t.Errorf("expected findings across >= 3 engines, got %v", enginesHit)
	}
	t.Logf("found %d defects across %d engines (dups filtered: %d)",
		len(res.Found), len(enginesHit), res.DuplicatesFiltered)
}

// TestCampaignWorkerCountIndependence pins the streaming pipeline's
// determinism contract: at a fixed seed, the findings, the verdict
// histogram and the reduced witnesses are identical for a serial and a
// wide worker pool (reduction enabled, so the reducer's own
// worker-count-independence guarantee is exercised end to end).
func TestCampaignWorkerCountIndependence(t *testing.T) {
	run := func(workers int) *Result {
		return Run(Config{
			Fuzzer:          fuzzers.NewComfort(),
			Testbeds:        engines.Testbeds(),
			Cases:           80,
			Seed:            2021,
			Workers:         workers,
			ReduceWitnesses: true,
		})
	}
	serial := run(1)
	wide := run(8)
	if serial.CasesRun != wide.CasesRun || serial.Executed != wide.Executed {
		t.Fatalf("case/execution counts differ: %d/%d vs %d/%d",
			serial.CasesRun, serial.Executed, wide.CasesRun, wide.Executed)
	}
	if len(serial.Found) != len(wide.Found) {
		t.Fatalf("findings differ: %d (workers=1) vs %d (workers=8)",
			len(serial.Found), len(wide.Found))
	}
	for id, f := range serial.Found {
		g, ok := wide.Found[id]
		if !ok {
			t.Errorf("finding %s missing at workers=8", id)
			continue
		}
		if f.TestCase != g.TestCase || f.Verdict != g.Verdict || f.Engine != g.Engine {
			t.Errorf("finding %s attributed differently across worker counts", id)
		}
		if f.Reduced != g.Reduced {
			t.Errorf("finding %s reduced differently across worker counts:\nworkers=1:\n%s\nworkers=8:\n%s",
				id, f.Reduced, g.Reduced)
		}
	}
	if serial.Reduction != nil && wide.Reduction != nil && *serial.Reduction != *wide.Reduction {
		t.Errorf("reduction stats differ: %+v vs %+v", *serial.Reduction, *wide.Reduction)
	}
	for v, n := range serial.Verdicts {
		if wide.Verdicts[v] != n {
			t.Errorf("verdict %s: %d (workers=1) vs %d (workers=8)", v, n, wide.Verdicts[v])
		}
	}
	if serial.DuplicatesFiltered != wide.DuplicatesFiltered {
		t.Errorf("duplicates filtered differ: %d vs %d",
			serial.DuplicatesFiltered, wide.DuplicatesFiltered)
	}
}

// TestCampaignCancellation pins early termination: cancelling mid-campaign
// returns promptly with partial accounting and without deadlock.
func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan *Result, 1)
	go func() {
		done <- Run(Config{
			Fuzzer:   fuzzers.NewComfort(),
			Testbeds: engines.Testbeds(),
			Cases:    100000, // far more than will run before cancellation
			Seed:     3,
			Workers:  4,
			Context:  ctx,
			Progress: func(p Progress) {
				if p.Done == 5 {
					cancel()
				}
			},
		})
	}()
	select {
	case res := <-done:
		if res.CasesRun >= 100000 {
			t.Errorf("campaign ran to completion despite cancellation (%d cases)", res.CasesRun)
		}
		if res.CasesRun < 5 {
			t.Errorf("campaign accounted only %d cases before returning", res.CasesRun)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("cancelled campaign did not return (deadlock?)")
	}
}

// TestCampaignProgressStreams checks that the progress callback fires once
// per case, in order.
func TestCampaignProgressStreams(t *testing.T) {
	var calls []int
	Run(Config{
		Fuzzer:   fuzzers.NewDIE(),
		Testbeds: figure8Testbeds()[:4],
		Cases:    20,
		Seed:     2,
		Workers:  4,
		Progress: func(p Progress) {
			if p.Total != 20 {
				t.Errorf("progress total = %d, want 20", p.Total)
			}
			if p.CacheHits+p.CacheMisses == 0 {
				t.Error("progress carried no compiled-program cache activity")
			}
			calls = append(calls, p.Done)
		},
	})
	if len(calls) != 20 {
		t.Fatalf("progress fired %d times, want 20", len(calls))
	}
	for i, n := range calls {
		if n != i+1 {
			t.Fatalf("progress out of order: call %d reported %d", i, n)
		}
	}
}

// collectStream drains generateCases into a slice for stream-level
// comparisons.
func collectStream(t *testing.T, cfg Config, shards int) []string {
	t.Helper()
	ch := make(chan exec.Case)
	go generateCases(context.Background(), cfg, shards, genStart{}, ch)
	var out []string
	for c := range ch {
		if c.Index != len(out) {
			t.Fatalf("case indices not contiguous: got %d at position %d", c.Index, len(out))
		}
		out = append(out, c.Src)
	}
	return out
}

// TestGeneratorShardStreamIdentical pins the tentpole determinism
// property at the stream level: for a Forkable fuzzer the emitted case
// stream is byte-identical for generator shard counts ∈ {1, 4, 8}.
func TestGeneratorShardStreamIdentical(t *testing.T) {
	for _, mk := range []func() fuzzers.Fuzzer{
		func() fuzzers.Fuzzer { return fuzzers.NewComfort() },
		func() fuzzers.Fuzzer { return fuzzers.NewCodeAlchemist() },
	} {
		f := mk()
		cfg := Config{Fuzzer: f, Cases: 60, Seed: 2021}
		base := collectStream(t, cfg, 1)
		if len(base) != cfg.Cases {
			t.Fatalf("%s: stream produced %d cases, want %d", f.Name(), len(base), cfg.Cases)
		}
		for _, shards := range []int{4, 8} {
			got := collectStream(t, cfg, shards)
			if len(got) != len(base) {
				t.Fatalf("%s: %d shards produced %d cases, 1 shard %d",
					f.Name(), shards, len(got), len(base))
			}
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("%s: case %d differs between 1 and %d shards:\n%q\nvs\n%q",
						f.Name(), i, shards, base[i], got[i])
				}
			}
		}
	}
}

// TestGeneratorShardSerialFallback pins the stateful-fuzzer contract: a
// fuzzer without Fork generates the legacy single-RNG stream no matter
// what shard count the campaign asks for.
func TestGeneratorShardSerialFallback(t *testing.T) {
	cfg := Config{Fuzzer: fuzzers.NewDIE(), Cases: 40, Seed: 7}
	want := collectStream(t, cfg, 1)
	got := collectStream(t, cfg, 8)
	if len(got) != len(want) {
		t.Fatalf("serial fallback produced %d cases at 8 shards, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("case %d: serial fuzzer stream changed under sharding", i)
		}
	}
}

// TestCampaignGenShardIndependence runs the same COMFORT campaign end to
// end at shard counts {1, 4, 8} and requires identical findings, verdict
// tallies and accounting — the campaign-level face of the stream test.
func TestCampaignGenShardIndependence(t *testing.T) {
	run := func(shards int) *Result {
		return Run(Config{
			Fuzzer:    fuzzers.NewComfort(),
			Testbeds:  figure8Testbeds(),
			Cases:     120,
			Seed:      2021,
			Workers:   4,
			GenShards: shards,
		})
	}
	base := run(1)
	for _, shards := range []int{4, 8} {
		got := run(shards)
		if base.CasesRun != got.CasesRun || base.Executed != got.Executed {
			t.Errorf("accounting depends on shard count %d: (%d,%d) vs (%d,%d)",
				shards, base.CasesRun, base.Executed, got.CasesRun, got.Executed)
		}
		if len(base.Found) != len(got.Found) {
			t.Errorf("findings depend on shard count %d: %d vs %d",
				shards, len(base.Found), len(got.Found))
		}
		for id, f := range base.Found {
			g, ok := got.Found[id]
			if !ok {
				t.Errorf("finding %s missing at %d shards", id, shards)
				continue
			}
			if f.TestCase != g.TestCase || f.Verdict != g.Verdict || f.Engine != g.Engine {
				t.Errorf("finding %s attributed differently at %d shards", id, shards)
			}
		}
		for v, n := range base.Verdicts {
			if got.Verdicts[v] != n {
				t.Errorf("verdict %s: %d at 1 shard vs %d at %d shards", v, n, got.Verdicts[v], shards)
			}
		}
	}
}

// TestProgressEvery pins the throttled progress contract: with
// ProgressEvery = 7 over 20 cases the callback fires at 7, 14 and —
// always — the final case.
func TestProgressEvery(t *testing.T) {
	var calls []int
	Run(Config{
		Fuzzer:        fuzzers.NewDIE(),
		Testbeds:      figure8Testbeds()[:4],
		Cases:         20,
		Seed:          2,
		Workers:       4,
		ProgressEvery: 7,
		Progress:      func(p Progress) { calls = append(calls, p.Done) },
	})
	want := []int{7, 14, 20}
	if len(calls) != len(want) {
		t.Fatalf("progress fired %d times (%v), want %v", len(calls), calls, want)
	}
	for i, n := range want {
		if calls[i] != n {
			t.Fatalf("progress calls %v, want %v", calls, want)
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	cfg := Config{
		Fuzzer:   fuzzers.NewDIE(),
		Testbeds: figure8Testbeds()[:6],
		Cases:    60,
		Seed:     9,
	}
	a := Run(cfg)
	b := Run(cfg)
	if len(a.Found) != len(b.Found) {
		t.Fatalf("campaign not deterministic: %d vs %d findings", len(a.Found), len(b.Found))
	}
	for id := range a.Found {
		if _, ok := b.Found[id]; !ok {
			t.Errorf("finding %s missing from second run", id)
		}
	}
}

func TestWitnessReplayFindsEveryDefect(t *testing.T) {
	// Replaying the catalog's own witnesses through the differential
	// pipeline must rediscover every defect — the completeness bound of
	// the harness (a fuzzer can never find more than the catalog).
	found := map[string]bool{}
	for _, e := range engines.All() {
		for _, v := range e.Versions {
			for _, d := range engines.ActiveDefects(v) {
				if found[d.ID] || d.AttrVersion != v.Name {
					continue
				}
				tb := engines.Testbed{Version: v, Strict: d.WitnessStrict}
				attr := engines.Attribute(d.Witness, tb, engines.RunOptions{Fuel: 500000, Seed: 1})
				for _, ad := range attr {
					found[ad.ID] = true
				}
			}
		}
	}
	if len(found) != len(engines.Catalog()) {
		missing := []string{}
		for _, d := range engines.Catalog() {
			if !found[d.ID] {
				missing = append(missing, d.ID)
			}
		}
		t.Errorf("witness replay found %d/%d defects; missing: %v",
			len(found), len(engines.Catalog()), missing)
	}
}

// TestCampaignReductionShrinksWitnesses pins the end-to-end reduction
// integration: reduced witnesses still reproduce their single-defect
// divergence, are no larger than the original, and the stats aggregate
// them correctly.
func TestCampaignReductionShrinksWitnesses(t *testing.T) {
	res := Run(Config{
		Fuzzer:          fuzzers.NewComfort(),
		Testbeds:        figure8Testbeds(),
		Cases:           150,
		Seed:            11,
		ReduceWitnesses: true,
	})
	if len(res.Found) == 0 {
		t.Fatal("campaign found nothing to reduce")
	}
	if res.Reduction == nil {
		t.Fatal("Reduction stats missing")
	}
	if res.Reduction.Findings != len(res.Found) {
		t.Errorf("stats cover %d findings, want %d", res.Reduction.Findings, len(res.Found))
	}
	total := 0
	for id, f := range res.Found {
		if f.Reduced == "" {
			t.Errorf("finding %s not reduced", id)
			continue
		}
		if len(f.Reduced) > len(f.TestCase) {
			t.Errorf("finding %s grew: %d -> %d bytes", id, len(f.TestCase), len(f.Reduced))
		}
		total += len(f.Reduced)
		// The reduced witness must still isolate the same defect under the
		// campaign's fuel/seed — the reducer's predicate, replayed.
		opts := engines.RunOptions{Fuel: difftest.DefaultFuel, Seed: 11}
		buggy := engines.NewDefectRunner(f.Defect, f.strict)
		ref := engines.NewDefectRunner(nil, f.strict)
		if buggy.Run(f.Reduced, opts).Key() == ref.Run(f.Reduced, opts).Key() {
			t.Errorf("finding %s: reduced witness no longer diverges", id)
		}
	}
	if res.Reduction.ReducedBytes != total {
		t.Errorf("ReducedBytes=%d, want %d", res.Reduction.ReducedBytes, total)
	}
	if s := ReductionSummary(res); !strings.Contains(s, "Median") {
		t.Errorf("summary render missing stats:\n%s", s)
	}
}

// TestTable2ToleratesUncataloguedEngine is the regression test for the
// nil-map dereference: an engineOrder entry with zero catalog defects must
// render a zero row, not panic (Table3-5 already tolerate this).
func TestTable2ToleratesUncataloguedEngine(t *testing.T) {
	orig := engineOrder
	engineOrder = append(append([]string{}, orig...), "ImaginaryJS")
	defer func() { engineOrder = orig }()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Table2 panicked on an engine with no catalog defects: %v", r)
		}
	}()
	out := Table2(nil)
	if !strings.Contains(out, "ImaginaryJS") {
		t.Errorf("uncatalogued engine missing from Table 2:\n%s", out)
	}
}

func TestTablesRender(t *testing.T) {
	found := engines.Catalog()[:20]
	var fd []*Defect
	fd = append(fd, found...)
	for name, table := range map[string]string{
		"t1": Table1(), "t2": Table2(fd), "t3": Table3(fd),
		"t4": Table4(fd), "t5": Table5(fd), "f7": Figure7(fd),
	} {
		if len(strings.Split(table, "\n")) < 4 {
			t.Errorf("table %s suspiciously short:\n%s", name, table)
		}
	}
	if !strings.Contains(Table2(fd), "158") {
		t.Error("Table 2 must contain the paper total 158")
	}
}
