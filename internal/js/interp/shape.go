package interp

import (
	"sync"
	"sync/atomic"
)

// Shape flag bits mirror the object-level hidden bits (__frozen__,
// __strict__, index-free-chain) into the shape word, so a shape fully
// describes the named-property layout *and* the marker state its keys
// imply. The object keeps its own copy for dictionary mode; shapeAppend
// keeps the two in sync through noteKey.
const (
	shapeFrozen uint8 = 1 << iota
	shapeStrict
	shapeIndexProps
)

// Shape is a node in the process-global hidden-class transition tree.
// Every node fixes one named property: its key, its descriptor attributes
// and the slot index it occupies in the owning object's dense slot array
// (slot == parent depth, so slots and shape chain always agree on layout).
// Objects that add the same properties in the same order with the same
// attributes share the same shape pointer, which is what inline caches
// key on.
//
// The tree is shared by every realm in the process: transitions are
// published copy-on-write under a global mutex, so campaign workers
// building realms concurrently only ever read immutable maps. A realm's
// prototypes, function objects and program objects therefore converge on
// one set of shapes after the first realm, making shape pointers stable
// across the thousands of realms a campaign builds per second.
type Shape struct {
	parent *Shape
	key    string
	attr   PropAttr
	slot   int32
	depth  int32
	flags  uint8

	// trans maps (key, attr) to the child shape; replaced wholesale on
	// insert (copy-on-write) so readers never take the lock.
	trans atomic.Pointer[map[transKey]*Shape]
	// table is a lazily built key → node index for deep chains, built at
	// most once per shape; shallow chains walk parent links instead.
	table atomic.Pointer[map[string]*Shape]
	// keyChain caches the root→leaf key order for enumeration.
	keyCache atomic.Pointer[[]string]
}

// transKey identifies a transition: property name plus descriptor
// attributes (objects that add the same key with different attributes
// must not share a shape, or attribute checks would need per-object
// storage again).
type transKey struct {
	key  string
	attr PropAttr
}

// shapeMu serialises transition inserts; lookups are lock-free.
var shapeMu sync.Mutex

// shapeRoot is the empty shape every shape-mode object starts from.
var shapeRoot = &Shape{slot: -1}

// nativeFuncShape is the prebuilt layout of every builtin function object:
// length then name, both configurable. Built once at process start so
// NewNativeFunc performs zero transition lookups.
var nativeFuncShape = shapeRoot.transition("length", Configurable).transition("name", Configurable)

// shapeTableDepth is the chain length at which find switches from the
// linear parent walk to a per-shape lookup table.
const shapeTableDepth = 8

// transition returns the child shape for adding (key, attr), creating and
// publishing it on first use.
func (s *Shape) transition(key string, attr PropAttr) *Shape {
	tk := transKey{key, attr}
	if m := s.trans.Load(); m != nil {
		if c := (*m)[tk]; c != nil {
			return c
		}
	}
	shapeMu.Lock()
	defer shapeMu.Unlock()
	old := s.trans.Load()
	if old != nil {
		if c := (*old)[tk]; c != nil {
			return c
		}
	}
	child := &Shape{
		parent: s, key: key, attr: attr,
		slot: s.depth, depth: s.depth + 1,
		flags: s.flags | markerFlag(key),
	}
	var nm map[transKey]*Shape
	if old == nil {
		nm = map[transKey]*Shape{tk: child}
	} else {
		nm = make(map[transKey]*Shape, len(*old)+1)
		for k, v := range *old {
			nm[k] = v
		}
		nm[tk] = child
	}
	s.trans.Store(&nm)
	return child
}

// markerFlag maps the hidden marker keys (and index keys) to shape flag
// bits; see the Object mirror bits of the same names.
func markerFlag(key string) uint8 {
	if len(key) == len(frozenKey) {
		if key == frozenKey {
			return shapeFrozen
		}
		if key == strictKey {
			return shapeStrict
		}
	}
	if isIndexKey(key) {
		return shapeIndexProps
	}
	return 0
}

// find returns the shape node owning key, or nil when the layout has no
// such property. Deep chains (the global object accumulating program
// variables) build a lookup table once; shallow chains — the common case
// for program objects — walk parent links, which is a handful of pointer
// hops and (usually interned) string compares.
func (s *Shape) find(key string) *Shape {
	if s.depth >= shapeTableDepth {
		t := s.table.Load()
		if t == nil {
			t = s.buildTable()
		}
		return (*t)[key]
	}
	for n := s; n.depth > 0; n = n.parent {
		if n.key == key {
			return n
		}
	}
	return nil
}

// buildTable constructs and publishes the key table for a deep shape.
// Racing builders produce identical tables, so last-store-wins is fine.
func (s *Shape) buildTable() *map[string]*Shape {
	m := make(map[string]*Shape, s.depth)
	for n := s; n.depth > 0; n = n.parent {
		m[n.key] = n
	}
	s.table.Store(&m)
	return &m
}

// keyChain returns the root→leaf property name order (the insertion order
// dictionary mode records in keys), cached per shape.
func (s *Shape) keyChain() []string {
	if s.depth == 0 {
		return nil
	}
	if ks := s.keyCache.Load(); ks != nil {
		return *ks
	}
	out := make([]string, s.depth)
	for n := s; n.depth > 0; n = n.parent {
		out[n.slot] = n.key
	}
	s.keyCache.Store(&out)
	return out
}

// shapeGetOwn answers getOwn for shape-mode objects. It boxes a Property
// for descriptor-shaped callers (builtins, enumeration); the evaluator's
// hot paths read slots directly through the probes in interp.go and the
// inline caches instead.
func (o *Object) shapeGetOwn(key string) (*Property, bool) {
	sp := o.shape.find(key)
	if sp == nil {
		return nil, false
	}
	v := o.slots[sp.slot]
	if v.kind == kindPending {
		o.resolveLazy(key)
		v = o.slots[sp.slot]
		if v.kind == kindPending {
			return nil, false
		}
	}
	return &Property{Value: v, Attr: sp.attr}, true
}

// shapeAppend adds a new named data property to a shape-mode object:
// one transition, one slot append, no map, no Property box. The epoch
// bump invalidates inline caches holding this object as a prototype-chain
// link (a new key can shadow what a cache resolved past it).
func (o *Object) shapeAppend(key string, v Value, attr PropAttr) {
	o.shape = o.shape.transition(key, attr)
	o.slots = append(o.slots, v)
	o.epoch++
	o.noteKey(key)
}

// shapeFastKey reports whether key on o can bypass the virtual-slot checks
// (array/typed length and indices, string wrapper length and indices) and
// be answered directly from shape storage. Index keys all start with a
// digit, so one byte test clears almost every name.
func (o *Object) shapeFastKey(key string) bool {
	if len(key) == 0 {
		return false
	}
	if c := key[0]; c >= '0' && c <= '9' {
		return false
	}
	if key == "length" {
		return !o.IsArray() && o.ElemKind == ElemNone && !(o.Class == "String" && o.HasPrim)
	}
	return true
}

// toDictionary leaves shape mode: every materialised slot is boxed into
// the classic property map, pending lazy slots keep riding the lazy
// machinery, and insertion order is recovered from the shape chain. This
// is the escape hatch for deletes, accessors, attribute redefinition and
// other exotica the dense layout does not model; the object behaves
// identically afterwards, just without shape/IC acceleration.
func (o *Object) toDictionary() {
	sh := o.shape
	if sh == nil {
		return
	}
	chain := sh.keyChain()
	o.keys = append([]string(nil), chain...)
	o.props = make(map[string]*Property, len(chain))
	ps := make([]Property, sh.depth)
	for n := sh; n.depth > 0; n = n.parent {
		v := o.slots[n.slot]
		if v.kind == kindPending {
			continue // still lazy: resolveLazy installs it into props later
		}
		ps[n.slot] = Property{Value: v, Attr: n.attr}
		o.props[n.key] = &ps[n.slot]
	}
	o.shape = nil
	o.slots = nil
	o.epoch++
}
