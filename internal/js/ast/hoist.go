package ast

// HoistedDecl is one var- or function-hoisted binding of a statement
// list: Fn is nil for a plain var name, the literal for a hoisted
// function declaration.
type HoistedDecl struct {
	Name string
	Fn   *FuncLit
}

// HoistedDecls enumerates the var declarators and function declarations
// hoisted out of a statement subtree — not descending into nested
// function literals — in source pre-order. It is the single definition of
// the hoisting traversal: the tree-walking evaluator's hoist step and the
// thunk compiler's top-level hoist plan both consume it, so the two
// evaluators cannot disagree on which bindings hoist or in what order.
func HoistedDecls(body []Stmt) []HoistedDecl {
	var out []HoistedDecl
	var walk func(ss []Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch st := s.(type) {
			case *VarDecl:
				if st.Kind == Var {
					for _, d := range st.Decls {
						out = append(out, HoistedDecl{Name: d.Name})
					}
				}
			case *FuncDecl:
				out = append(out, HoistedDecl{Name: st.Fn.Name, Fn: st.Fn})
			case *BlockStmt:
				walk(st.Body)
			case *IfStmt:
				walk([]Stmt{st.Then})
				if st.Else != nil {
					walk([]Stmt{st.Else})
				}
			case *ForStmt:
				if vd, ok := st.Init.(*VarDecl); ok && vd.Kind == Var {
					for _, d := range vd.Decls {
						out = append(out, HoistedDecl{Name: d.Name})
					}
				}
				walk([]Stmt{st.Body})
			case *ForInStmt:
				if st.Decl == Var {
					out = append(out, HoistedDecl{Name: st.Name})
				}
				walk([]Stmt{st.Body})
			case *WhileStmt:
				walk([]Stmt{st.Body})
			case *DoWhileStmt:
				walk([]Stmt{st.Body})
			case *SwitchStmt:
				for _, c := range st.Cases {
					walk(c.Body)
				}
			case *TryStmt:
				walk(st.Block.Body)
				if st.Catch != nil {
					walk(st.Catch.Body)
				}
				if st.Finally != nil {
					walk(st.Finally.Body)
				}
			case *LabeledStmt:
				walk([]Stmt{st.Body})
			}
		}
	}
	walk(body)
	return out
}
