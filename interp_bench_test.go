// Interpreter microbenchmarks: workload-shaped programs executed on the
// resolve-once slot path and on the legacy dynamic map path, so every perf
// PR can see exactly what the evaluator change bought (EXPERIMENTS.md
// records the numbers). The programs are interpreter-bound: one parse and
// one realm per measurement loop iteration would drown the signal, so the
// program is parsed once and the runtime rebuilt per iteration only where
// required for isolation (global state is mutated by runs).
package comfort

import (
	"testing"

	"comfort/internal/js/ast"
	"comfort/internal/js/builtins"
	"comfort/internal/js/compile"
	"comfort/internal/js/interp"
	"comfort/internal/js/parser"
	"comfort/internal/js/resolve"
)

// interpBenchSrcs are the four workload shapes of the BenchmarkInterp
// suite. Work happens inside functions (the slot path's target — top-level
// code stays on the dynamic global path by design).
var interpBenchSrcs = map[string]string{
	"idents": `
function work(n) {
  var a = 1, b = 2, c = 3, d = 4;
  var acc = 0;
  for (var i = 0; i < n; i++) {
    var t = a + b - c + d;
    acc = acc + t - b + c - d + a;
    if (acc > 1000000) { acc = acc - 1000000; }
  }
  return acc;
}
print(work(4000));`,
	"calls": `
function leaf(x, y) { return x + y; }
function mid(x) { var s = leaf(x, 1) + leaf(x, 2); return s + leaf(x, 3); }
function work(n) {
  var acc = 0;
  for (var i = 0; i < n; i++) { acc = acc + mid(i % 7); }
  return acc;
}
print(work(1200));`,
	"arrays": `
function work(n) {
  var a = [];
  for (var i = 0; i < n; i++) { a[i] = i * 2; }
  var acc = 0;
  for (var j = 0; j < n; j++) { acc = acc + a[j]; a[j] = acc % 9973; }
  return acc + a.length;
}
print(work(2500));`,
	"strings": `
function work(n) {
  var s = "";
  for (var i = 0; i < n; i++) { s = s + "ab"; }
  var acc = 0;
  for (var j = 0; j < s.length; j = j + 7) { acc = acc + s.charCodeAt(j); }
  return acc + s.length;
}
print(work(600));`,
	// objects exercises the hidden-class layout and the compiled path's
	// inline caches: literal construction (one shape transition chain per
	// iteration), monomorphic and polymorphic member access, member
	// writes, and method calls through the prototype-less function chain.
	"objects": `
function Point(x, y) { this.x = x; this.y = y; }
Point.prototype.sum = function() { return this.x + this.y; };
function makeTagged(i) {
  if (i % 2 === 0) { return {kind: 1, x: i, y: i + 1}; }
  return {kind: 2, x: i, y: i - 1, z: i};
}
function makeMega(i) {
  switch (i % 6) {
  case 0: return {m: i, a0: 0};
  case 1: return {m: i, a1: 0};
  case 2: return {m: i, a2: 0};
  case 3: return {m: i, a3: 0};
  case 4: return {m: i, a4: 0};
  default: return {m: i, a5: 0};
  }
}
function work(n) {
  var p = new Point(0, 0);
  var acc = 0;
  for (var i = 0; i < n; i++) {
    p.x = p.x + 1;
    p.y = p.y + 2;
    var o = makeTagged(i);
    acc = acc + o.kind + o.x - o.y + p.sum();
    var lit = {a: i, b: acc};
    lit.a = lit.a + lit.b;
    acc = acc + lit.a % 7919;
    acc = acc + makeMega(i).m % 13;
    if (acc > 1000000000) { acc = acc % 1000000; }
  }
  return acc;
}
function storm(n) {
  // Transition storm: one object growing a fresh key per iteration, then
  // a delete to force the dictionary fallback, then post-fallback writes.
  var g = {seed: 0};
  for (var i = 0; i < n; i++) { g["k" + (i % 24)] = i; }
  delete g.seed;
  var t = 0;
  for (var j = 0; j < n; j++) { g.k0 = j; t = t + g.k0 + (("seed" in g) ? 1 : 0); }
  return t;
}
print(work(1500) + storm(400));`,
}

var interpBenchOrder = []string{"idents", "calls", "arrays", "strings", "objects"}

// benchMode selects one of the three evaluator paths: compiled thunks,
// the resolved tree walker, and the legacy dynamic map walker.
type benchMode int

const (
	benchCompiled benchMode = iota
	benchResolved
	benchMap
)

func parseBench(b *testing.B, src string, mode benchMode) *ast.Program {
	b.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatalf("parse: %v", err)
	}
	if mode != benchMap {
		resolve.Program(prog)
	}
	if mode == benchCompiled {
		compile.Program(prog)
	}
	return prog
}

func runBenchProgram(b *testing.B, prog *ast.Program, mode benchMode) {
	b.Helper()
	in := builtins.NewRuntime(interp.Config{Fuel: 50_000_000, DisableCompile: mode != benchCompiled})
	var err error
	if mode == benchCompiled {
		err = compile.Of(prog).Run(in)
	} else {
		err = in.Run(prog)
	}
	if err != nil {
		b.Fatalf("run: %v", err)
	}
}

// BenchmarkInterp measures the evaluator itself on identifier-, call-,
// array- and string-heavy programs, on all three evaluator paths:
// compiled closure thunks, the resolved tree walker, and the legacy
// dynamic map walker.
func BenchmarkInterp(b *testing.B) {
	modes := []struct {
		name string
		mode benchMode
	}{{"compiled", benchCompiled}, {"resolved", benchResolved}, {"map", benchMap}}
	for _, name := range interpBenchOrder {
		src := interpBenchSrcs[name]
		for _, m := range modes {
			b.Run(name+"/"+m.name, func(b *testing.B) {
				prog := parseBench(b, src, m.mode)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runBenchProgram(b, prog, m.mode)
				}
			})
		}
	}
}

// BenchmarkCompilePass isolates the compile-once pass itself (it runs once
// per parse; campaigns amortise it across every behaviour class and case
// sharing the compiled program).
func BenchmarkCompilePass(b *testing.B) {
	src := interpBenchSrcs["calls"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := parser.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		resolve.Program(prog)
		compile.Program(prog)
	}
}

// BenchmarkResolvePass isolates the resolve-once pass itself (it runs once
// per parse; campaigns amortise it across every behaviour class and case
// sharing the compiled program).
func BenchmarkResolvePass(b *testing.B) {
	src := interpBenchSrcs["calls"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := parser.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		resolve.Program(prog)
	}
}
