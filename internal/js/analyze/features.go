package analyze

import (
	"math"
	"strings"

	"comfort/internal/js/ast"
	"comfort/internal/js/token"
)

// Features is a bitset over the feature inventory below — one bit per
// language feature a program exercises. The compact form is what lets
// the campaign aggregate fingerprints over tens of thousands of cases
// (a union and a popcount, no per-case allocation).
type Features uint64

// Feature bits. Order is the public fingerprint layout; append only.
const (
	FeatVar Features = 1 << iota
	FeatLet
	FeatConst
	FeatFunction
	FeatArrow
	FeatReturn
	FeatIf
	FeatFor
	FeatForIn
	FeatForOf
	FeatWhile
	FeatDoWhile
	FeatSwitch
	FeatBreak
	FeatContinue
	FeatLabel
	FeatTry
	FeatCatch
	FeatFinally
	FeatThrow
	FeatNew
	FeatDelete
	FeatTypeof
	FeatVoid
	FeatIn
	FeatInstanceof
	FeatThis
	FeatEval
	FeatArguments
	FeatRegex
	FeatTemplate
	FeatSpread
	FeatRest
	FeatAccessor
	FeatComputedMember
	FeatMember
	FeatCall
	FeatObject
	FeatArray
	FeatString
	FeatNumber
	FeatBool
	FeatNull
	FeatUpdate
	FeatLogical
	FeatCond
	FeatSeq
	FeatStrict
	FeatRecursion
	FeatNestedFunction
	FeatShadowing

	featCount = iota // number of defined feature bits
)

// featureNames indexes feature bit position → stable name.
var featureNames = [featCount]string{
	"var", "let", "const", "function", "arrow", "return", "if", "for",
	"for-in", "for-of", "while", "do-while", "switch", "break", "continue",
	"label", "try", "catch", "finally", "throw", "new", "delete", "typeof",
	"void", "in", "instanceof", "this", "eval", "arguments", "regex",
	"template", "spread", "rest", "accessor", "computed-member", "member",
	"call", "object", "array", "string", "number", "bool", "null", "update",
	"logical", "cond", "seq", "strict", "recursion", "nested-function",
	"shadowing",
}

// FeatureCount is the size of the feature inventory.
const FeatureCount = featCount

// Names expands the bitset to feature names in inventory order.
func (f Features) Names() []string {
	var out []string
	for i := 0; i < featCount; i++ {
		if f&(1<<uint(i)) != 0 {
			out = append(out, featureNames[i])
		}
	}
	return out
}

// Count is the number of distinct features set.
func (f Features) Count() int {
	n := 0
	for v := uint64(f); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Has reports whether every bit of mask is set.
func (f Features) Has(mask Features) bool { return f&mask == mask }

// Flags is a bitset of divergence-risk rules: constructs whose behaviour
// is implementation-defined or nondeterministic across real engines, so
// a divergence in a program carrying one is a suppressible false
// positive rather than conformance evidence.
type Flags uint8

// Divergence-risk rules.
const (
	// FlagMathRandom — Math.random() calls.
	FlagMathRandom Flags = 1 << iota
	// FlagDate — Date.now() or argument-less new Date(): wall-clock reads.
	FlagDate
	// FlagForInOrder — for-in loops (enumeration order is
	// implementation-defined for the general object graph).
	FlagForInOrder
	// FlagRecursion — directly self-recursive functions (stack-limit and
	// overflow-error shape differ across engines).
	FlagRecursion
	// FlagFloatFormat — float literals beyond 15 significant digits
	// (shortest-round-trip formatting differs at the precision edge).
	FlagFloatFormat

	flagCount = iota
)

var flagNames = [flagCount]string{
	"math-random", "date", "for-in-order", "recursion", "float-format",
}

// Names expands the flag set to stable rule names in rule order.
func (f Flags) Names() []string {
	var out []string
	for i := 0; i < flagCount; i++ {
		if f&(1<<uint(i)) != 0 {
			out = append(out, flagNames[i])
		}
	}
	return out
}

// Any reports whether any divergence-risk rule fired.
func (f Flags) Any() bool { return f != 0 }

// scanProgram runs the single fingerprint walk: feature bits, divergence
// flags and the print-site inventory. (FeatShadowing is contributed by
// the early-error pass, which owns the scope model.)
func scanProgram(prog *ast.Program, r *Report) {
	if prog.Strict {
		r.Features |= FeatStrict
	}
	ast.Walk(prog, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.VarDecl:
			switch v.Kind {
			case ast.Let:
				r.Features |= FeatLet
			case ast.Const:
				r.Features |= FeatConst
			default:
				r.Features |= FeatVar
			}
		case *ast.FuncDecl:
			r.Features |= FeatFunction
			scanFunc(v.Fn, r)
		case *ast.FuncLit:
			if v.Arrow {
				r.Features |= FeatArrow
			} else {
				r.Features |= FeatFunction
			}
			scanFunc(v, r)
		case *ast.ReturnStmt:
			r.Features |= FeatReturn
		case *ast.IfStmt:
			r.Features |= FeatIf
		case *ast.ForStmt:
			r.Features |= FeatFor
		case *ast.ForInStmt:
			if v.Of {
				r.Features |= FeatForOf
			} else {
				r.Features |= FeatForIn
				r.Flags |= FlagForInOrder
			}
		case *ast.WhileStmt:
			r.Features |= FeatWhile
		case *ast.DoWhileStmt:
			r.Features |= FeatDoWhile
		case *ast.SwitchStmt:
			r.Features |= FeatSwitch
		case *ast.BreakStmt:
			r.Features |= FeatBreak
		case *ast.ContinueStmt:
			r.Features |= FeatContinue
		case *ast.LabeledStmt:
			r.Features |= FeatLabel
		case *ast.TryStmt:
			r.Features |= FeatTry
			if v.Catch != nil {
				r.Features |= FeatCatch
			}
			if v.Finally != nil {
				r.Features |= FeatFinally
			}
		case *ast.ThrowStmt:
			r.Features |= FeatThrow
		case *ast.NewExpr:
			r.Features |= FeatNew
			if id, ok := v.Callee.(*ast.Ident); ok && id.Name == "Date" && len(v.Args) == 0 {
				r.Flags |= FlagDate
			}
		case *ast.UnaryExpr:
			switch v.Op {
			case token.DELETE:
				r.Features |= FeatDelete
			case token.TYPEOF:
				r.Features |= FeatTypeof
			case token.VOID:
				r.Features |= FeatVoid
			}
		case *ast.BinaryExpr:
			switch v.Op {
			case token.IN:
				r.Features |= FeatIn
			case token.INSTANCEOF:
				r.Features |= FeatInstanceof
			}
		case *ast.ThisExpr:
			r.Features |= FeatThis
		case *ast.Ident:
			switch v.Name {
			case "eval":
				r.Features |= FeatEval
			case "arguments":
				r.Features |= FeatArguments
			}
		case *ast.RegexLit:
			r.Features |= FeatRegex
		case *ast.TemplateLit:
			r.Features |= FeatTemplate
		case *ast.SpreadExpr:
			r.Features |= FeatSpread
		case *ast.MemberExpr:
			r.Features |= FeatMember
			if v.Computed {
				r.Features |= FeatComputedMember
			}
		case *ast.CallExpr:
			r.Features |= FeatCall
			if id, ok := v.Callee.(*ast.Ident); ok && id.Name == "print" {
				r.PrintSites = append(r.PrintSites, v.ID())
			}
			if name, ok := calleePath(v.Callee); ok {
				switch name {
				case "Math.random":
					r.Flags |= FlagMathRandom
				case "Date.now":
					r.Flags |= FlagDate
				}
			}
		case *ast.ObjectLit:
			r.Features |= FeatObject
			for _, p := range v.Props {
				if p.Kind != ast.PropInit {
					r.Features |= FeatAccessor
				}
			}
		case *ast.ArrayLit:
			r.Features |= FeatArray
		case *ast.StringLit:
			r.Features |= FeatString
		case *ast.NumberLit:
			r.Features |= FeatNumber
			if floatFormatEdge(v) {
				r.Flags |= FlagFloatFormat
			}
		case *ast.BoolLit:
			r.Features |= FeatBool
		case *ast.NullLit:
			r.Features |= FeatNull
		case *ast.UpdateExpr:
			r.Features |= FeatUpdate
		case *ast.LogicalExpr:
			r.Features |= FeatLogical
		case *ast.CondExpr:
			r.Features |= FeatCond
		case *ast.SeqExpr:
			r.Features |= FeatSeq
		}
		return true
	})
}

// scanFunc records the per-function feature and flag bits: rest
// parameters, nested functions, strict bodies and direct recursion.
func scanFunc(fn *ast.FuncLit, r *Report) {
	if fn.Rest != "" {
		r.Features |= FeatRest
	}
	if fn.Strict {
		r.Features |= FeatStrict
	}
	name := fn.Name
	var body ast.Node
	if fn.Body != nil {
		body = fn.Body
	} else if fn.ExprBody != nil {
		body = fn.ExprBody
	}
	ast.Walk(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			r.Features |= FeatNestedFunction
		case *ast.CallExpr:
			if id, ok := v.Callee.(*ast.Ident); ok && name != "" && id.Name == name {
				r.Features |= FeatRecursion
				r.Flags |= FlagRecursion
			}
		}
		return true
	})
}

// calleePath renders a callee like Math.random as "Math.random" when it
// is a non-computed member of a plain identifier.
func calleePath(callee ast.Expr) (string, bool) {
	m, ok := callee.(*ast.MemberExpr)
	if !ok {
		return "", false
	}
	return memberPath(m)
}

func memberPath(m *ast.MemberExpr) (string, bool) {
	if m.Computed {
		return "", false
	}
	base, ok := m.Obj.(*ast.Ident)
	if !ok {
		return "", false
	}
	return base.Name + "." + m.Name, true
}

// floatFormatEdge reports whether a numeric literal sits at the
// float64 precision edge: a fractional or exponent form carrying more
// than 15 significant decimal digits, where shortest-round-trip
// formatting legitimately differs between engines.
func floatFormatEdge(lit *ast.NumberLit) bool {
	raw := lit.Raw
	if raw == "" || lit.Value != lit.Value { // no raw text, or NaN
		return false
	}
	if !strings.ContainsAny(raw, ".eE") || strings.HasPrefix(raw, "0x") || strings.HasPrefix(raw, "0X") {
		return false
	}
	if math.Trunc(lit.Value) == lit.Value && math.Abs(lit.Value) < 1e15 {
		// Small integers render identically everywhere regardless of how
		// many digits spelled them.
		return false
	}
	digits := 0
	sawNonZero := false
	for _, c := range raw {
		if c == 'e' || c == 'E' {
			break
		}
		if c < '0' || c > '9' {
			continue
		}
		if c == '0' && !sawNonZero {
			continue
		}
		sawNonZero = true
		digits++
	}
	return digits > 15
}
