package dedup

import (
	"testing"

	"comfort/internal/spec"
)

func newTree() *Tree {
	return New(KnownAPIsFromSpec(spec.Default().Names()))
}

func TestSeenOrAdd(t *testing.T) {
	tr := newTree()
	if tr.SeenOrAdd("Rhino", "substr", "WrongOutput#1") {
		t.Error("first report must not be filtered")
	}
	if !tr.SeenOrAdd("Rhino", "substr", "WrongOutput#1") {
		t.Error("identical report must be filtered")
	}
	// Different layers create different leaves (Figure 6 structure).
	if tr.SeenOrAdd("V8", "substr", "WrongOutput#1") {
		t.Error("different engine is a new leaf")
	}
	if tr.SeenOrAdd("Rhino", "toFixed", "WrongOutput#1") {
		t.Error("different API is a new leaf")
	}
	if tr.SeenOrAdd("Rhino", "substr", "TypeError") {
		t.Error("different error class is a new leaf")
	}
	leaves, filtered := tr.Stats()
	if leaves != 4 || filtered != 1 {
		t.Errorf("stats: %d leaves %d filtered", leaves, filtered)
	}
	if got := tr.Engines(); len(got) != 2 {
		t.Errorf("engines: %v", got)
	}
}

func TestAPIOf(t *testing.T) {
	tr := newTree()
	cases := map[string]string{
		`var x = "s".substr(1, 2);`:      "substr",
		`print(parseInt("42"));`:         "parseInt",
		`var a = 1 + 2;`:                 "None",
		`obj.notAnAPI(); "x".charAt(0);`: "charAt",
		`eval("1");`:                     "eval",
	}
	for src, want := range cases {
		if got := tr.APIOf(src); got != want {
			t.Errorf("APIOf(%q) = %q want %q", src, got, want)
		}
	}
}

func TestErrorClass(t *testing.T) {
	if ErrorClass("exception", "TypeError") != "TypeError" {
		t.Error("error name wins")
	}
	if ErrorClass("timeout", "") != "timeout" {
		t.Error("outcome fallback")
	}
	a := BehaviourClass("pass", "", "output A")
	b := BehaviourClass("pass", "", "output B")
	if a == b {
		t.Error("distinct outputs must hash to distinct behaviour classes")
	}
	if BehaviourClass("exception", "RangeError", "x") != "RangeError" {
		t.Error("exceptions do not hash the output")
	}
}
