// Stage 1 of the campaign pipeline: test-case generation. Fuzzers that
// implement fuzzers.Forkable generate as N concurrent shards — shard s
// owns batch indices j ≡ s (mod N), every batch j draws from an RNG
// derived deterministically from (campaign seed, j), and a reorder buffer
// (the per-shard lookahead channels below, the same receipt-order merge
// idea as internal/exec's outcome collector) splices the batches back
// into index order. Because each batch is a pure function of (seed, j),
// the emitted case stream is byte-identical for every shard count;
// fuzzers without Fork keep the legacy single-RNG serial path, whose
// stream is unchanged from previous releases.
package campaign

import (
	"context"
	"math/rand"
	"runtime"

	"comfort/internal/exec"
	"comfort/internal/fuzzers"
)

// genLookahead bounds each shard's unconsumed batches, so one slow batch
// never lets the other shards race arbitrarily far ahead of the merge
// point (memory stays bounded by shards × lookahead batches).
const genLookahead = 4

// defaultGenShards picks the shard count when Config.GenShards is 0.
func defaultGenShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// batchSeed derives batch j's RNG seed from the campaign seed via a
// splitmix64 round — consecutive indices land on uncorrelated streams,
// and the derivation depends only on (seed, j), never on the shard
// layout.
func batchSeed(seed int64, j int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(j+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// genStart is a generator restart position from a checkpoint: resume
// emission at global case index `index`, which sits at offset `off` into
// batch `batch`. The zero value is a fresh start. batch == -1 marks a
// serial-path position: the stream is replayed from case 0 with emission
// suppressed below `index`, because a stateful fuzzer's RNG cannot be
// fast-forwarded — the replay is the fast part of a resumed campaign
// (generation only; no executions).
type genStart struct {
	batch, off, index int
}

// generateCases produces the campaign's deterministic case stream on out,
// closing it when the budget is met, the fuzzer is exhausted (an empty
// batch), or ctx is cancelled. Because batch j is a pure function of
// (seed, j) on the forkable path, resuming at (batch, off) re-generates
// the exact suffix of the fresh run's stream, for every shard count.
func generateCases(ctx context.Context, cfg Config, shards int, start genStart, out chan<- exec.Case) {
	defer close(out)
	forkable, ok := cfg.Fuzzer.(fuzzers.Forkable)
	if !ok {
		generateSerial(ctx, cfg, start, out)
		return
	}
	if start.batch < 0 {
		// Fingerprints pin the fuzzer, so a serial-format position never
		// reaches the forkable path; tolerate it as a fresh start anyway.
		start = genStart{}
	}
	if shards <= 1 {
		// One shard: the same per-batch-derived RNG scheme, run inline.
		emit := newEmitter(ctx, cfg, start.index, 0, out)
		for j := start.batch; ; j++ {
			batch := cfg.Fuzzer.Next(rand.New(rand.NewSource(batchSeed(cfg.Seed, j))))
			if len(batch) == 0 || !emit(j, batch, startSkip(start, j)) {
				return
			}
		}
	}

	// Shard ctx: cancelled when the merge loop returns, so producer
	// goroutines blocked on a full lookahead channel always drain.
	shardCtx, stop := context.WithCancel(ctx)
	defer stop()
	chans := make([]chan []string, shards)
	for s := 0; s < shards; s++ {
		ch := make(chan []string, genLookahead)
		chans[s] = ch
		go func(s int, f fuzzers.Fuzzer) {
			defer close(ch)
			for j := start.batch + s; ; j += shards {
				batch := f.Next(rand.New(rand.NewSource(batchSeed(cfg.Seed, j))))
				select {
				case <-shardCtx.Done():
					return
				case ch <- batch:
					if len(batch) == 0 {
						return // exhausted; the merger stops at this index
					}
				}
			}
		}(s, forkable.Fork(batchSeed(cfg.Seed, -1-s)))
	}
	emit := newEmitter(ctx, cfg, start.index, 0, out)
	for j := start.batch; ; j++ {
		batch, ok := <-chans[(j-start.batch)%shards]
		if !ok || len(batch) == 0 || !emit(j, batch, startSkip(start, j)) {
			return
		}
	}
}

// startSkip is the number of already-consumed cases to drop from batch j:
// the resume offset for the restart batch, zero for every later one.
func startSkip(start genStart, j int) int {
	if j == start.batch {
		return start.off
	}
	return 0
}

// generateSerial is the legacy path: one RNG advanced batch to batch — the
// determinism anchor for fuzzers whose state evolves across Next calls. A
// resume replays the stream from the beginning, suppressing emission below
// the restart index.
func generateSerial(ctx context.Context, cfg Config, start genStart, out chan<- exec.Case) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	emit := newEmitter(ctx, cfg, 0, start.index, out)
	for {
		batch := cfg.Fuzzer.Next(rng)
		if len(batch) == 0 || !emit(-1, batch, 0) {
			return
		}
	}
}

// newEmitter returns a closure that forwards one batch's cases to the
// scheduler under the campaign budget, reporting false when generation
// should stop (budget met or context cancelled). produced is the global
// index of the next case the emitter will see; cases below suppressBelow
// are generated but not emitted (the serial replay resume). Each emitted
// case carries its (batch, offset) position so the sink can checkpoint an
// exact restart point.
func newEmitter(ctx context.Context, cfg Config, produced, suppressBelow int, out chan<- exec.Case) func(int, []string, int) bool {
	return func(j int, batch []string, skip int) bool {
		for off, src := range batch {
			if off < skip {
				continue
			}
			if produced >= cfg.Cases {
				return false
			}
			if produced < suppressBelow {
				produced++
				continue
			}
			select {
			case <-ctx.Done():
				return false
			case out <- exec.Case{Index: produced, Src: src, Batch: j, Off: off}:
				produced++
			}
		}
		return produced < cfg.Cases
	}
}
