// Command benchgate is the campaign-throughput regression gate: it runs
// the BenchmarkCampaignThroughput campaign shape (via the same
// campaign.ThroughputProbe the benchmark measures) and compares the
// observed execs/sec against the newest entry of BENCH_campaign.json —
// the machine-readable perf trajectory each perf PR appends to. CI fails
// when throughput falls more than the threshold below the recorded value.
//
// Usage:
//
//	benchgate                      # gate against BENCH_campaign.json at 15%
//	benchgate -threshold 0.35      # slack for noisy shared runners
//	benchgate -reps 3              # best-of-3 damps scheduler noise
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"comfort/internal/campaign"
)

// benchHistory mirrors BENCH_campaign.json (schema-checked by
// TestBenchCampaignJSON).
type benchHistory struct {
	Benchmark string `json:"benchmark"`
	Metric    string `json:"metric"`
	Shape     string `json:"shape"`
	History   []struct {
		PR          int     `json:"pr"`
		ExecsPerSec float64 `json:"execs_per_sec"`
		Note        string  `json:"note"`
	} `json:"history"`
}

func main() {
	var (
		jsonPath  = flag.String("bench-json", "BENCH_campaign.json", "perf-trajectory file to gate against")
		threshold = flag.Float64("threshold", 0.15, "maximum allowed fractional regression vs the newest entry")
		reps      = flag.Int("reps", 3, "probe repetitions; the best rate is compared (damps scheduler noise)")
		cases     = flag.Int("cases", 120, "campaign case budget (the recorded shape)")
		workers   = flag.Int("workers", 8, "scheduler workers (the recorded shape)")
		seed      = flag.Int64("seed", 2021, "campaign seed (the recorded shape)")
	)
	flag.Parse()

	raw, err := os.ReadFile(*jsonPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var h benchHistory
	if err := json.Unmarshal(raw, &h); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", *jsonPath, err)
		os.Exit(2)
	}
	if len(h.History) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s has no history entries\n", *jsonPath)
		os.Exit(2)
	}
	last := h.History[len(h.History)-1]

	best := 0.0
	for i := 0; i < *reps; i++ {
		start := time.Now()
		executed := campaign.ThroughputProbe(*cases, *workers, *seed)
		rate := float64(executed) / time.Since(start).Seconds()
		fmt.Printf("probe %d/%d: %d executions, %.1f execs/sec\n", i+1, *reps, executed, rate)
		if rate > best {
			best = rate
		}
	}

	floor := last.ExecsPerSec * (1 - *threshold)
	fmt.Printf("benchgate: best %.1f execs/sec vs recorded PR %d at %.1f (floor %.1f, threshold %.0f%%)\n",
		best, last.PR, last.ExecsPerSec, floor, *threshold*100)
	if best < floor {
		fmt.Fprintf(os.Stderr, "benchgate: REGRESSION — %.1f execs/sec is %.1f%% below the recorded %.1f\n",
			best, 100*(1-best/last.ExecsPerSec), last.ExecsPerSec)
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}
