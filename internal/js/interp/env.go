package interp

// Env is a lexical environment: a chain of binding frames. Function-level
// frames absorb var declarations from nested blocks (var hoisting).
type Env struct {
	vars   map[string]*binding
	parent *Env
	isFunc bool // var-scope boundary
}

type binding struct {
	v       Value
	mutable bool
	// silent marks immutable bindings whose sloppy-mode assignment is a
	// silent no-op rather than a TypeError (function self-names).
	silent bool
}

// NewEnv creates a child environment.
func NewEnv(parent *Env, isFunc bool) *Env {
	return &Env{vars: map[string]*binding{}, parent: parent, isFunc: isFunc}
}

// lookup finds the binding for name, walking outward.
func (e *Env) lookup(name string) (*binding, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if b, ok := cur.vars[name]; ok {
			return b, true
		}
	}
	return nil, false
}

// declareVar creates a var-scoped binding on the nearest function frame.
func (e *Env) declareVar(name string, v Value) {
	fn := e
	for fn.parent != nil && !fn.isFunc {
		fn = fn.parent
	}
	if b, ok := fn.vars[name]; ok {
		if v.Kind() != KindUndefined {
			b.v = v
		}
		return
	}
	fn.vars[name] = &binding{v: v, mutable: true}
}

// declareLexical creates a block-scoped binding on this frame.
func (e *Env) declareLexical(name string, v Value, mutable bool) {
	e.vars[name] = &binding{v: v, mutable: mutable}
}

// declareFuncSelfName creates the immutable (but sloppy-silent) binding of a
// named function expression's own name inside its body.
func (e *Env) declareFuncSelfName(name string, v Value) {
	e.vars[name] = &binding{v: v, mutable: false, silent: true}
}

// Has reports whether name resolves in this environment chain.
func (e *Env) Has(name string) bool {
	_, ok := e.lookup(name)
	return ok
}
