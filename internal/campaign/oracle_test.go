package campaign

import (
	"fmt"
	"math/rand"
	"testing"

	"comfort/internal/engines"
	"comfort/internal/fuzzers"
	"comfort/internal/js/resolve"
)

// oracleTestbeds picks a behaviour-diverse testbed subset: the defect-free
// reference in both modes plus the oldest (defect-richest) and newest
// version of every engine family, both modes each.
func oracleTestbeds() []engines.Testbed {
	tbs := []engines.Testbed{
		engines.ReferenceTestbed(false),
		engines.ReferenceTestbed(true),
	}
	for _, e := range engines.All() {
		for _, v := range []engines.Version{e.Versions[0], e.Latest()} {
			tbs = append(tbs, engines.Testbed{Version: v, Strict: false})
			tbs = append(tbs, engines.Testbed{Version: v, Strict: true})
		}
	}
	return tbs
}

// TestEvaluatorOracle is the differential oracle for the resolve-once
// interpreter: every program the six fuzzers generate from fixed seeds must
// produce byte-identical ExecResults — output, outcome, error rendering and
// fuel consumption — whether it executes on the slot-indexed path or the
// legacy map-scope path, across defect-laden and reference testbeds in both
// modes.
func TestEvaluatorOracle(t *testing.T) {
	tbs := oracleTestbeds()
	prepared := make([]*engines.PreparedTestbed, len(tbs))
	for i, tb := range tbs {
		prepared[i] = tb.Prepare()
	}
	opts := engines.RunOptions{Fuel: 150000, Seed: 9}
	const perFuzzer = 25
	for fi, f := range fuzzers.All() {
		rng := rand.New(rand.NewSource(int64(100 + fi)))
		var cases []string
		for len(cases) < perFuzzer {
			batch := f.Next(rng)
			if len(batch) == 0 {
				break
			}
			cases = append(cases, batch...)
		}
		if len(cases) > perFuzzer {
			cases = cases[:perFuzzer]
		}
		for ci, src := range cases {
			for _, p := range prepared {
				if msg := p.PreParseError(src); msg != "" {
					continue // identical gate on both paths
				}
				rProg, rErr := p.Parse(src)
				resolvedRes := p.ExecParsed(rProg, rErr, opts)
				mProg, mErr := p.ParseUnresolved(src)
				mapRes := p.ExecParsed(mProg, mErr, opts)
				if resolvedRes.Semantics() != mapRes.Semantics() {
					t.Fatalf("%s case %d on %s: evaluator paths diverge\nresolved: %+v\nmap:      %+v\nprogram:\n%s",
						f.Name(), ci, p.Testbed.ID(), resolvedRes, mapRes, src)
				}
			}
		}
	}
}

// TestCompiledOracle is the differential oracle for the compile-once thunk
// evaluator: every program the six fuzzers generate from fixed seeds must
// produce byte-identical ExecResults — output, outcome, error rendering
// and fuel consumption — whether it executes through compiled closure
// thunks or the (resolved) tree walker, across defect-laden and reference
// testbeds in both modes. One shared program object serves both paths,
// exactly as the scheduler cache shares it.
func TestCompiledOracle(t *testing.T) {
	tbs := oracleTestbeds()
	prepared := make([]*engines.PreparedTestbed, len(tbs))
	for i, tb := range tbs {
		prepared[i] = tb.Prepare()
	}
	opts := engines.RunOptions{Fuel: 150000, Seed: 9}
	treeOpts := opts
	treeOpts.DisableCompile = true
	const perFuzzer = 25
	for fi, f := range fuzzers.All() {
		rng := rand.New(rand.NewSource(int64(100 + fi)))
		var cases []string
		for len(cases) < perFuzzer {
			batch := f.Next(rng)
			if len(batch) == 0 {
				break
			}
			cases = append(cases, batch...)
		}
		if len(cases) > perFuzzer {
			cases = cases[:perFuzzer]
		}
		for ci, src := range cases {
			for _, p := range prepared {
				if msg := p.PreParseError(src); msg != "" {
					continue // identical gate on both paths
				}
				prog, perr := p.Parse(src)
				compiledRes := p.ExecParsed(prog, perr, opts)
				treeRes := p.ExecParsed(prog, perr, treeOpts)
				if compiledRes.Semantics() != treeRes.Semantics() {
					t.Fatalf("%s case %d on %s: evaluator paths diverge\ncompiled: %+v\ntree:     %+v\nprogram:\n%s",
						f.Name(), ci, p.Testbed.ID(), compiledRes, treeRes, src)
				}
			}
		}
	}
}

// TestShapesOracle is the differential oracle for the hidden-class object
// layout and its inline caches: every program the six fuzzers generate
// from fixed seeds must produce byte-identical ExecResults — output,
// outcome, error rendering and fuel consumption — whether it executes
// with shape-mode objects and ICs (the default compiled configuration),
// with dictionary objects on the compiled path (DisableShapes), or on the
// dictionary tree walker (DisableShapes + DisableCompile), across
// defect-laden and reference testbeds in both modes.
func TestShapesOracle(t *testing.T) {
	tbs := oracleTestbeds()
	prepared := make([]*engines.PreparedTestbed, len(tbs))
	for i, tb := range tbs {
		prepared[i] = tb.Prepare()
	}
	opts := engines.RunOptions{Fuel: 150000, Seed: 9}
	dictOpts := opts
	dictOpts.DisableShapes = true
	treeOpts := dictOpts
	treeOpts.DisableCompile = true
	const perFuzzer = 25
	for fi, f := range fuzzers.All() {
		rng := rand.New(rand.NewSource(int64(100 + fi)))
		var cases []string
		for len(cases) < perFuzzer {
			batch := f.Next(rng)
			if len(batch) == 0 {
				break
			}
			cases = append(cases, batch...)
		}
		if len(cases) > perFuzzer {
			cases = cases[:perFuzzer]
		}
		for ci, src := range cases {
			for _, p := range prepared {
				if msg := p.PreParseError(src); msg != "" {
					continue // identical gate on all paths
				}
				prog, perr := p.Parse(src)
				shapedRes := p.ExecParsed(prog, perr, opts)
				dictRes := p.ExecParsed(prog, perr, dictOpts)
				treeRes := p.ExecParsed(prog, perr, treeOpts)
				if shapedRes.Semantics() != dictRes.Semantics() {
					t.Fatalf("%s case %d on %s: object layouts diverge on the compiled path\nshaped: %+v\ndict:   %+v\nprogram:\n%s",
						f.Name(), ci, p.Testbed.ID(), shapedRes, dictRes, src)
				}
				if shapedRes.Semantics() != treeRes.Semantics() {
					t.Fatalf("%s case %d on %s: shaped compiled path diverges from dictionary tree walker\nshaped: %+v\ntree:   %+v\nprogram:\n%s",
						f.Name(), ci, p.Testbed.ID(), shapedRes, treeRes, src)
				}
			}
		}
	}
}

// TestCampaignShapesOracle runs the same campaign with and without the
// hidden-class layout and requires identical findings, verdict tallies and
// execution counts — the campaign-level finding-identity oracle for the
// shape/IC subsystem. It also pins that the default configuration actually
// exercises the inline caches (non-zero probe traffic) and that the
// ablation leaves them untouched.
func TestCampaignShapesOracle(t *testing.T) {
	run := func(disable bool) *Result {
		return Run(Config{
			Fuzzer:        fuzzers.NewComfort(),
			Testbeds:      engines.Testbeds(),
			Cases:         150,
			Seed:          2021,
			Workers:       4,
			DisableShapes: disable,
		})
	}
	shaped := run(false)
	dict := run(true)
	if got, want := findingsKey(shaped), findingsKey(dict); got != want {
		t.Errorf("findings differ between object layouts:\nshaped: %s\ndict:   %s", got, want)
	}
	if shaped.Executed != dict.Executed {
		t.Errorf("executed %d shaped, %d dict", shaped.Executed, dict.Executed)
	}
	for v, n := range shaped.Verdicts {
		if dict.Verdicts[v] != n {
			t.Errorf("verdict %s: %d shaped vs %d dict", v, n, dict.Verdicts[v])
		}
	}
	if shaped.ICHits+shaped.ICMisses == 0 {
		t.Errorf("default campaign should exercise the inline caches: hits=%d misses=%d",
			shaped.ICHits, shaped.ICMisses)
	}
	if dict.ICHits+dict.ICMisses+dict.ICMega != 0 {
		t.Errorf("DisableShapes campaign should leave the inline caches empty: hits=%d misses=%d mega=%d",
			dict.ICHits, dict.ICMisses, dict.ICMega)
	}
}

// TestCampaignCompileOracle runs the same campaign with and without the
// thunk compiler and requires identical findings, verdict tallies and
// execution counts — plus full compiled-path coverage in the default
// configuration (the Fallback counter stays at zero).
func TestCampaignCompileOracle(t *testing.T) {
	run := func(disable bool) *Result {
		return Run(Config{
			Fuzzer:         fuzzers.NewComfort(),
			Testbeds:       engines.Testbeds(),
			Cases:          150,
			Seed:           2021,
			Workers:        4,
			DisableCompile: disable,
		})
	}
	compiled := run(false)
	tree := run(true)
	if got, want := findingsKey(compiled), findingsKey(tree); got != want {
		t.Errorf("findings differ between evaluator paths:\ncompiled: %s\ntree:     %s", got, want)
	}
	if compiled.Executed != tree.Executed {
		t.Errorf("executed %d on compiled path, %d on tree path", compiled.Executed, tree.Executed)
	}
	for v, n := range compiled.Verdicts {
		if tree.Verdicts[v] != n {
			t.Errorf("verdict %s: %d compiled vs %d tree", v, n, tree.Verdicts[v])
		}
	}
	if compiled.Compiled == 0 || compiled.Fallback != 0 {
		t.Errorf("default campaign should run fully compiled: compiled=%d fallback=%d",
			compiled.Compiled, compiled.Fallback)
	}
	if tree.Compiled != 0 || tree.Fallback == 0 {
		t.Errorf("DisableCompile campaign should run fully tree-walked: compiled=%d fallback=%d",
			tree.Compiled, tree.Fallback)
	}
}

// TestCampaignResolveOracle runs the same campaign on both evaluator paths
// and requires identical findings, verdict tallies and execution counts.
func TestCampaignResolveOracle(t *testing.T) {
	run := func(disable bool) *Result {
		return Run(Config{
			Fuzzer:         fuzzers.NewComfort(),
			Testbeds:       engines.Testbeds(),
			Cases:          150,
			Seed:           2021,
			Workers:        4,
			DisableResolve: disable,
		})
	}
	resolved := run(false)
	mapped := run(true)
	if got, want := findingsKey(resolved), findingsKey(mapped); got != want {
		t.Errorf("findings differ between evaluator paths:\nresolved: %s\nmap:      %s", got, want)
	}
	if resolved.Executed != mapped.Executed {
		t.Errorf("executed %d on resolved path, %d on map path", resolved.Executed, mapped.Executed)
	}
	for v, n := range resolved.Verdicts {
		if mapped.Verdicts[v] != n {
			t.Errorf("verdict %s: %d resolved vs %d map", v, n, mapped.Verdicts[v])
		}
	}
}

// TestCampaignFrozenLMOracle runs the same campaign with the generator on
// the frozen token-ID sampler and on the map-backed oracle sampler, for
// every LM-backed fuzzer, and requires identical findings, tallies and
// accounting — the generation-side twin of TestCampaignResolveOracle.
func TestCampaignFrozenLMOracle(t *testing.T) {
	for _, mk := range []func(fuzzers.LMOptions) fuzzers.Fuzzer{
		func(o fuzzers.LMOptions) fuzzers.Fuzzer { return fuzzers.NewComfortLM(o) },
		func(o fuzzers.LMOptions) fuzzers.Fuzzer { return fuzzers.NewDeepSmithLM(o) },
		func(o fuzzers.LMOptions) fuzzers.Fuzzer { return fuzzers.NewMontageLM(o) },
	} {
		run := func(disable bool) *Result {
			return Run(Config{
				Fuzzer:   mk(fuzzers.LMOptions{DisableFrozenLM: disable}),
				Testbeds: engines.Testbeds(),
				Cases:    100,
				Seed:     2021,
				Workers:  4,
			})
		}
		frozen := run(false)
		mapped := run(true)
		if got, want := findingsKey(frozen), findingsKey(mapped); got != want {
			t.Errorf("%s: findings differ between LM implementations:\nfrozen: %s\nmap:    %s",
				frozen.FuzzerName, got, want)
		}
		if frozen.Executed != mapped.Executed || frozen.CasesRun != mapped.CasesRun {
			t.Errorf("%s: accounting differs between LM implementations: (%d,%d) vs (%d,%d)",
				frozen.FuzzerName, frozen.CasesRun, frozen.Executed, mapped.CasesRun, mapped.Executed)
		}
		for v, n := range frozen.Verdicts {
			if mapped.Verdicts[v] != n {
				t.Errorf("%s: verdict %s: %d frozen vs %d map", frozen.FuzzerName, v, n, mapped.Verdicts[v])
			}
		}
	}
}

// TestCampaignWorkerIndependenceResolved pins worker-count independence
// with resolution enabled (the default path): findings and tallies must not
// depend on scheduling.
func TestCampaignWorkerIndependenceResolved(t *testing.T) {
	run := func(workers int) *Result {
		return Run(Config{
			Fuzzer:   fuzzers.NewComfort(),
			Testbeds: engines.Testbeds(),
			Cases:    120,
			Seed:     77,
			Workers:  workers,
		})
	}
	a, b := run(1), run(8)
	if got, want := findingsKey(a), findingsKey(b); got != want {
		t.Errorf("findings depend on worker count:\n1 worker: %s\n8 workers: %s", got, want)
	}
	if a.CasesRun != b.CasesRun || a.Executed != b.Executed {
		t.Errorf("case accounting depends on worker count: (%d,%d) vs (%d,%d)",
			a.CasesRun, a.Executed, b.CasesRun, b.Executed)
	}
}

// findingsKey renders a campaign's findings deterministically for
// comparison.
func findingsKey(r *Result) string {
	ids := make([]string, 0, len(r.Found))
	for id := range r.Found {
		ids = append(ids, id)
	}
	sortStrings(ids)
	out := ""
	for _, id := range ids {
		f := r.Found[id]
		out += fmt.Sprintf("%s[%s|%s|%d];", id, f.Engine, f.Verdict, len(f.TestCase))
	}
	if out == "" {
		out = "(none)"
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestResolveIdempotent guards the compiled-program cache's sharing
// assumption: resolving twice must be a no-op.
func TestResolveIdempotent(t *testing.T) {
	p := engines.ReferenceTestbed(false).Prepare()
	prog, err := p.Parse("function f(a){var b=a+1; return b;} print(f(2));")
	if err != nil {
		t.Fatal(err)
	}
	if !prog.ResolvedScopes {
		t.Fatal("PreparedTestbed.Parse did not resolve the program")
	}
	resolve.Program(prog) // second resolution must not disturb annotations
	res := p.Exec(prog, engines.RunOptions{Fuel: 10000, Seed: 1})
	if res.Output != "3\n" {
		t.Fatalf("unexpected output %q", res.Output)
	}
}
