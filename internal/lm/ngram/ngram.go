// Package ngram implements the back-off token language model at the heart
// of the program generator. A high-order model (order 8) stands in for the
// Transformer's long-context dependence; a low-order model (order 2) stands
// in for the LSTM baselines — the gap between them reproduces the
// syntactic-validity gap of the paper's Figure 9.
package ngram

import (
	"math/rand"
	"strings"
)

const sep = "\x00"

// Model is a back-off n-gram language model over string tokens. It is the
// mutable training form; Freeze compiles it into the int32-interned,
// zero-allocation sampling form (see frozen.go), and the map-backed Sample
// below stays intact as the frozen sampler's differential oracle.
type Model struct {
	Order  int
	counts []map[string]map[string]int // counts[k][ctx of k tokens][next]
}

// New creates an untrained model of the given order (context length).
func New(order int) *Model {
	if order < 1 {
		order = 1
	}
	m := &Model{Order: order}
	m.counts = make([]map[string]map[string]int, order+1)
	for k := 0; k <= order; k++ {
		m.counts[k] = map[string]map[string]int{}
	}
	return m
}

// Train accumulates one token sequence.
func (m *Model) Train(tokens []string) {
	for i := range tokens {
		for k := 0; k <= m.Order; k++ {
			if i < k {
				continue
			}
			ctx := strings.Join(tokens[i-k:i], sep)
			row := m.counts[k][ctx]
			if row == nil {
				row = map[string]int{}
				m.counts[k][ctx] = row
			}
			row[tokens[i]]++
		}
	}
}

// Contexts reports the number of distinct highest-order contexts.
func (m *Model) Contexts() int { return len(m.counts[m.Order]) }

// candidate is one continuation with its count.
type candidate struct {
	tok string
	n   int
}

// Sample draws the next token from the top-k continuations of the longest
// matching context suffix (the paper's top-k sampling with k=10). ok is
// false when even the empty context has no data.
func (m *Model) Sample(context []string, topK int, rng *rand.Rand) (string, bool) {
	if topK < 1 {
		topK = 10
	}
	for k := m.Order; k >= 0; k-- {
		if len(context) < k {
			continue
		}
		ctx := strings.Join(context[len(context)-k:], sep)
		row, ok := m.counts[k][ctx]
		if !ok || len(row) == 0 {
			continue
		}
		// sortedCandidates (frozen.go) is the single comparator both
		// samplers share — the frozen/map byte-identity contract depends
		// on the candidate order never diverging between them.
		cands := sortedCandidates(row)
		if len(cands) > topK {
			cands = cands[:topK]
		}
		// Uniform draw among the top-k (the paper: "randomly choosing a
		// token from the top-k tokens that are predicted to have the
		// highest possibilities").
		return cands[rng.Intn(len(cands))].tok, true
	}
	return "", false
}
