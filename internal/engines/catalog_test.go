package engines

import (
	"fmt"
	"testing"

	"comfort/internal/js/builtins"
	"comfort/internal/js/interp"
	"comfort/internal/js/parser"
)

// Table 2 of the paper: per-engine submitted / verified / fixed / Test262.
var wantTable2 = map[string][4]int{
	"V8":           {4, 4, 3, 1},
	"ChakraCore":   {7, 7, 5, 1},
	"JSC":          {12, 11, 11, 3},
	"SpiderMonkey": {3, 3, 3, 0},
	"Rhino":        {44, 29, 29, 4},
	"Nashorn":      {18, 12, 2, 1},
	"Hermes":       {16, 16, 15, 4},
	"JerryScript":  {35, 31, 31, 3},
	"QuickJS":      {17, 14, 14, 4},
	"Graaljs":      {2, 2, 2, 0},
}

func TestCatalogTable2Marginals(t *testing.T) {
	got := map[string][4]int{}
	for _, d := range Catalog() {
		row := got[d.Engine]
		row[0]++
		if d.Verified {
			row[1]++
		}
		if d.DevFixed {
			row[2]++
		}
		if d.Test262 {
			row[3]++
		}
		got[d.Engine] = row
	}
	for engine, want := range wantTable2 {
		if got[engine] != want {
			t.Errorf("Table 2 %s: got %v want %v", engine, got[engine], want)
		}
	}
	var totS, totV, totF, totT int
	for _, row := range got {
		totS += row[0]
		totV += row[1]
		totF += row[2]
		totT += row[3]
	}
	if totS != 158 || totV != 129 || totF != 115 || totT != 21 {
		t.Errorf("Table 2 totals: got %d/%d/%d/%d want 158/129/115/21", totS, totV, totF, totT)
	}
}

// Table 3 of the paper: per engine-version submitted / verified / fixed / new.
var wantTable3 = map[string][4]int{
	"V8/V8.5":             {4, 4, 3, 4},
	"ChakraCore/v1.11.16": {3, 3, 1, 3},
	"ChakraCore/v1.11.13": {1, 1, 1, 0},
	"ChakraCore/v1.11.12": {1, 1, 1, 1},
	"ChakraCore/v1.11.8":  {2, 2, 2, 2},
	"JSC/261782":          {1, 1, 1, 1},
	"JSC/251631":          {2, 1, 1, 1},
	"JSC/246135":          {8, 8, 8, 6},
	"JSC/244445":          {1, 1, 1, 0},
	"SpiderMonkey/v52.9":  {1, 1, 1, 0},
	"SpiderMonkey/v38.3":  {1, 1, 1, 0},
	"SpiderMonkey/v1.7":   {1, 1, 1, 0},
	"Rhino/v1.7.12":       {25, 19, 19, 19},
	"Rhino/v1.7.11":       {17, 8, 8, 4},
	"Rhino/v1.7.10":       {2, 2, 2, 2},
	"Nashorn/v13.0.1":     {4, 4, 0, 4},
	"Nashorn/v12.0.1":     {14, 8, 2, 7},
	"Hermes/v0.6.0":       {2, 2, 2, 2},
	"Hermes/v0.4.0":       {1, 1, 0, 1},
	"Hermes/v0.3.0":       {6, 6, 6, 5},
	"Hermes/v0.1.1":       {7, 7, 7, 4},
	"JerryScript/v2.3.0":  {2, 2, 2, 2},
	"JerryScript/v2.2.0":  {18, 16, 16, 15},
	"JerryScript/v2.1.0":  {6, 5, 5, 4},
	"JerryScript/v2.0":    {8, 7, 7, 7},
	"JerryScript/v1.0":    {1, 1, 1, 1},
	"QuickJS/2020-04-12":  {1, 1, 1, 1},
	"QuickJS/2020-01-05":  {2, 2, 2, 2},
	"QuickJS/2019-10-27":  {4, 3, 3, 3},
	"QuickJS/2019-09-18":  {3, 1, 1, 1},
	"QuickJS/2019-09-01":  {4, 4, 4, 4},
	"QuickJS/2019-07-09":  {3, 3, 3, 1},
	"Graaljs/v20.1.0":     {2, 2, 2, 2},
}

func TestCatalogTable3Marginals(t *testing.T) {
	got := map[string][4]int{}
	for _, d := range Catalog() {
		key := d.Engine + "/" + d.AttrVersion
		row := got[key]
		row[0]++
		if d.Verified {
			row[1]++
		}
		if d.DevFixed {
			row[2]++
		}
		if d.New {
			row[3]++
		}
		got[key] = row
	}
	if len(got) != len(wantTable3) {
		t.Errorf("Table 3 rows: got %d want %d", len(got), len(wantTable3))
	}
	for key, want := range wantTable3 {
		if got[key] != want {
			t.Errorf("Table 3 %s: got %v want %v", key, got[key], want)
		}
	}
	newTotal := 0
	for _, d := range Catalog() {
		if d.New {
			newTotal++
		}
	}
	if newTotal != 109 {
		t.Errorf("Table 3 new-bug total: got %d want 109", newTotal)
	}
}

// Table 4: submitted / confirmed / fixed / Test262 per discovery channel.
func TestCatalogTable4Marginals(t *testing.T) {
	var gen, spec [4]int
	for _, d := range Catalog() {
		row := &gen
		if d.Channel == ChannelSpecData {
			row = &spec
		}
		row[0]++
		if d.Verified {
			row[1]++
		}
		if d.DevFixed {
			row[2]++
		}
		if d.Test262 {
			row[3]++
		}
	}
	if gen != [4]int{97, 78, 67, 5} {
		t.Errorf("Table 4 generation channel: got %v want [97 78 67 5]", gen)
	}
	if spec != [4]int{61, 51, 48, 16} {
		t.Errorf("Table 4 spec-guided channel: got %v want [61 51 48 16]", spec)
	}
}

// Table 5: top-10 buggy API object types (submitted / confirmed / fixed).
var wantTable5 = map[string][3]int{
	"Object":     {23, 21, 18},
	"String":     {22, 20, 19},
	"Array":      {17, 12, 9},
	"TypedArray": {8, 5, 5},
	"Number":     {5, 4, 4},
	"eval":       {4, 4, 4},
	"DataView":   {4, 2, 2},
	"JSON":       {3, 3, 2},
	"RegExp":     {2, 2, 1},
	"Date":       {2, 1, 1},
	"other":      {68, 55, 50},
}

func TestCatalogTable5Marginals(t *testing.T) {
	got := map[string][3]int{}
	for _, d := range Catalog() {
		row := got[d.APIType]
		row[0]++
		if d.Verified {
			row[1]++
		}
		if d.DevFixed {
			row[2]++
		}
		got[d.APIType] = row
	}
	for at, want := range wantTable5 {
		if got[at] != want {
			t.Errorf("Table 5 %s: got %v want %v", at, got[at], want)
		}
	}
}

// Figure 7: confirmed and fixed bugs per compiler component.
func TestCatalogFigure7Marginals(t *testing.T) {
	wantConfirmed := map[Component]int{
		CodeGen: 49, Implementation: 45, ParserComp: 15,
		RegexEngine: 9, StrictModeComp: 8, Optimizer: 3,
	}
	wantFixed := map[Component]int{
		CodeGen: 42, Implementation: 41, ParserComp: 13,
		RegexEngine: 8, StrictModeComp: 8, Optimizer: 3,
	}
	gotConfirmed := map[Component]int{}
	gotFixed := map[Component]int{}
	for _, d := range Catalog() {
		if d.Verified {
			gotConfirmed[d.Component]++
		}
		if d.DevFixed {
			gotFixed[d.Component]++
		}
	}
	for _, c := range Components() {
		if gotConfirmed[c] != wantConfirmed[c] {
			t.Errorf("Figure 7 confirmed %s: got %d want %d", c, gotConfirmed[c], wantConfirmed[c])
		}
		if gotFixed[c] != wantFixed[c] {
			t.Errorf("Figure 7 fixed %s: got %d want %d", c, gotFixed[c], wantFixed[c])
		}
	}
}

func TestCatalogBasicHygiene(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range Catalog() {
		if seen[d.ID] {
			t.Errorf("duplicate defect ID %s", d.ID)
		}
		seen[d.ID] = true
		if d.Witness == "" {
			t.Errorf("%s: missing witness", d.ID)
		}
		if d.Hook == nil && d.Configure == nil && d.ParserOpts == nil && d.PreParse == nil {
			t.Errorf("%s: defect has no behavioural realisation", d.ID)
		}
		if _, ok := FindVersion(d.Engine, d.AttrVersion); !ok {
			t.Errorf("%s: unknown attributed version %s/%s", d.ID, d.Engine, d.AttrVersion)
		}
		if d.FixedIn != "" {
			if _, ok := FindVersion(d.Engine, d.FixedIn); !ok {
				t.Errorf("%s: unknown fixed-in version %s/%s", d.ID, d.Engine, d.FixedIn)
			}
		}
		if d.DevFixed && !d.Verified {
			t.Errorf("%s: fixed but not verified", d.ID)
		}
	}
}

// runWitness executes src on a runtime with exactly one defect installed
// (when active) or none (reference).
func runWitness(t *testing.T, d *Defect, active bool, strict bool) ExecResult {
	t.Helper()
	cfg := interp.Config{Seed: 42, Strict: strict, Fuel: 500000}
	parseOpts := parser.Options{Strict: strict}
	if active {
		if d.Configure != nil {
			d.Configure(&cfg)
		}
		if d.ParserOpts != nil {
			d.ParserOpts(&parseOpts)
		}
		if d.Hook != nil && (!d.StrictOnly || strict) {
			cfg.Hook = d.Hook
		}
		if d.PreParse != nil {
			if msg := d.PreParse(d.Witness); msg != "" {
				return ExecResult{Outcome: OutcomeParseError, Error: msg, ErrName: "SyntaxError"}
			}
		}
	}
	in := builtins.NewRuntime(cfg)
	prog, err := parser.ParseWith(d.Witness, parseOpts)
	if err != nil {
		return ExecResult{Outcome: OutcomeParseError, Error: err.Error(), ErrName: "SyntaxError"}
	}
	runErr := in.Run(prog)
	res := ExecResult{Output: in.Out.String(), FuelUsed: in.FuelUsed()}
	switch e := runErr.(type) {
	case nil:
		res.Outcome = OutcomePass
	case *interp.Throw:
		res.Outcome = OutcomeException
		res.ErrName = interp.ErrorName(e.Val)
	case *interp.Abort:
		if e.Kind == interp.AbortCrash {
			res.Outcome = OutcomeCrash
			res.ErrName = "crash"
		} else {
			res.Outcome = OutcomeTimeout
			res.ErrName = "timeout"
		}
	}
	return res
}

// TestEveryDefectWitnessDiverges proves that each seeded defect is a real,
// observable conformance divergence: its witness behaves differently with
// the defect installed than on the defect-free reference runtime.
func TestEveryDefectWitnessDiverges(t *testing.T) {
	for _, d := range Catalog() {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			buggy := runWitness(t, d, true, d.WitnessStrict)
			ref := runWitness(t, d, false, d.WitnessStrict)
			if buggy.Key() == ref.Key() {
				t.Errorf("witness does not diverge:\n  buggy: %s\n  ref:   %s\n  witness:\n%s",
					buggy.Key(), ref.Key(), d.Witness)
			}
		})
	}
}

// TestWitnessOnRealTestbeds runs every witness on the earliest buggy
// testbed (full defect profile) and expects divergence from the reference,
// and — for defects with a FixedIn version whose own hook is gone — ensures
// the defect's single-hook behaviour disappears after the fix.
func TestWitnessOnRealTestbeds(t *testing.T) {
	for _, d := range Catalog() {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			v, ok := FindVersion(d.Engine, d.AttrVersion)
			if !ok {
				t.Fatalf("version not found")
			}
			if !d.ActiveIn(v) {
				t.Fatalf("defect not active in its attributed version")
			}
			if d.FixedIn != "" {
				fixed, ok := FindVersion(d.Engine, d.FixedIn)
				if !ok {
					t.Fatalf("fixed version not found")
				}
				if d.ActiveIn(fixed) {
					t.Errorf("defect still active in fixed version %s", d.FixedIn)
				}
			}
			tb := Testbed{Version: v, Strict: d.WitnessStrict}
			res := tb.Run(d.Witness, RunOptions{Fuel: 500000, Seed: 42})
			ref := Reference(d.Witness, d.WitnessStrict, RunOptions{Fuel: 500000, Seed: 42})
			if res.Key() == ref.Key() {
				t.Errorf("witness agrees with reference on buggy testbed %s:\n  %s", tb.ID(), res.Key())
			}
		})
	}
}

func TestVersionInventory(t *testing.T) {
	count := 0
	for _, e := range All() {
		count += len(e.Versions)
		for i, v := range e.Versions {
			if v.rank != i {
				t.Errorf("%s: bad rank", v.ID())
			}
		}
	}
	// 51 configurations in the paper's Table 1 plus the JerryScript v1.0
	// build referenced by Table 3.
	if count != 52 {
		t.Errorf("version inventory: got %d want 52", count)
	}
	if len(Testbeds()) != count*2 {
		t.Errorf("testbeds: got %d want %d", len(Testbeds()), count*2)
	}
}

func TestActiveDefectDistribution(t *testing.T) {
	// Every engine must have at least one active defect in some tested
	// version (the paper found bugs in all ten engines). SpiderMonkey's
	// bugs all live in previous releases — its latest build is clean,
	// matching the paper's observation.
	for _, e := range All() {
		any := false
		for _, v := range e.Versions {
			if len(ActiveDefects(v)) > 0 {
				any = true
				break
			}
		}
		if !any {
			t.Errorf("%s has no active defects in any version", e.Name)
		}
	}
	if n := len(ActiveDefects(mustVersion(t, "SpiderMonkey", "v78.0"))); n != 0 {
		t.Errorf("SpiderMonkey latest should be clean, has %d defects", n)
	}
	// The reference engine must have none.
	ref := Version{Engine: "Reference", Name: "spec"}
	if n := len(ActiveDefects(ref)); n != 0 {
		t.Errorf("reference engine has %d active defects", n)
	}
}

func mustVersion(t *testing.T, engine, version string) Version {
	t.Helper()
	v, ok := FindVersion(engine, version)
	if !ok {
		t.Fatalf("version %s/%s not found", engine, version)
	}
	return v
}

func ExampleCatalog() {
	fmt.Println(len(Catalog()))
	// Output: 158
}
