// Benchmark for the campaign server's multi-campaign throughput — the
// scheduling cost of running several concurrent jobs over one shared
// execution pool, measured next to the single-campaign headline
// (BenchmarkCampaignThroughput). BENCH_server.json records the trajectory
// and cmd/benchgate gates it in CI via the same server.LoadProbe shape.
package comfort

import (
	"testing"

	"comfort/internal/server"
)

// BenchmarkServerLoad runs three concurrent 120-case campaigns through a
// supervisor sharing one 8-slot execution gate — the headline campaign
// shape tripled, on the same seed family. The reported rate is aggregate
// testbed executions per second across all jobs.
func BenchmarkServerLoad(b *testing.B) {
	var executed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := server.LoadProbe(b.TempDir(), 3, 120, 8, 2021)
		if err != nil {
			b.Fatal(err)
		}
		executed += int64(n)
	}
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "execs/sec")
}
