package builtins

import "comfort/internal/js/interp"

// errorKinds lists the standard native error constructors.
var errorKinds = []string{
	"Error", "TypeError", "RangeError", "SyntaxError", "ReferenceError",
	"EvalError", "URIError", "InternalError",
}

// installErrors wires the full hierarchy at once — used by the capture
// pass, whose realm must register every method table up front.
func installErrors(r *registry) {
	base := installErrorBase(r)
	for _, kind := range errorKinds[1:] {
		installErrorKind(r, base, kind)
	}
}

// installErrorsLazy defers the hierarchy per constructor: touching a
// global error name (or throwing, via the interpreter's prototype-miss
// hook) installs the shared Error base plus just that one kind. Most
// generated programs raise a single error kind — usually TypeError — so
// a throwing realm pays for two constructors instead of eight. Returns
// the per-kind force hook for interp.ProtoMiss.
func installErrorsLazy(r *registry, names []string) func(kind string) {
	if r.capturing != nil {
		installErrors(r)
		return func(string) {}
	}
	in := r.in
	var base *interp.Object
	force := func(kind string) {
		if base == nil {
			base = installErrorBase(r)
		}
		if kind == "Error" || in.Protos[kind] != nil {
			return
		}
		for _, k := range errorKinds[1:] {
			if k == kind {
				installErrorKind(r, base, kind)
				return
			}
		}
	}
	for _, name := range names {
		k := name
		in.Global.SetLazy(k, func() { force(k) })
	}
	return force
}

// installErrorBase builds Error.prototype, its toString, and the Error
// constructor — the shared parent every subclass chains to.
func installErrorBase(r *registry) *interp.Object {
	in := r.in
	base := in.NewObject(in.Protos["Object"])
	base.Class = "Error"
	base.SetSlot("name", interp.String("Error"), interp.Writable|interp.Configurable)
	base.SetSlot("message", interp.String(""), interp.Writable|interp.Configurable)

	r.method(base, "Error.prototype.toString", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if !this.IsObject() {
			return interp.Undefined(), in.TypeErrorf("Error.prototype.toString called on non-object")
		}
		nameV, err := in.GetPropKey(this, "name")
		if err != nil {
			return interp.Undefined(), err
		}
		name := "Error"
		if !nameV.IsUndefined() {
			name, err = in.ToString(nameV)
			if err != nil {
				return interp.Undefined(), err
			}
		}
		msgV, err := in.GetPropKey(this, "message")
		if err != nil {
			return interp.Undefined(), err
		}
		msg := ""
		if !msgV.IsUndefined() {
			msg, err = in.ToString(msgV)
			if err != nil {
				return interp.Undefined(), err
			}
		}
		switch {
		case msg == "":
			return interp.String(name), nil
		case name == "":
			return interp.String(msg), nil
		default:
			return interp.String(name + ": " + msg), nil
		}
	})

	makeErrorCtor(r, "Error", base)
	return base
}

// installErrorKind builds one subclass prototype and constructor chained
// to the shared base.
func installErrorKind(r *registry, base *interp.Object, kind string) {
	in := r.in
	proto := in.NewObject(base)
	proto.Class = "Error"
	proto.SetSlot("name", interp.String(kind), interp.Writable|interp.Configurable)
	proto.SetSlot("message", interp.String(""), interp.Writable|interp.Configurable)
	makeErrorCtor(r, kind, proto)
}

func makeErrorCtor(r *registry, kind string, proto *interp.Object) {
	body := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o := in.NewObject(proto)
		o.Class = "Error"
		if msg := arg(args, 0); !msg.IsUndefined() {
			s, err := in.ToString(msg)
			if err != nil {
				return interp.Undefined(), err
			}
			o.SetSlot("message", interp.String(s), interp.Writable|interp.Configurable)
		}
		return interp.ObjValue(o), nil
	}
	r.ctor(kind, 1, proto, body, body)
}
